#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <queue>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "core/sharding.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace ember::serve {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kActive: return "active";
    case ReplicaState::kQuarantined: return "quarantined";
    case ReplicaState::kCatchingUp: return "catching_up";
    case ReplicaState::kKilled: return "killed";
  }
  return "unknown";
}

namespace {

/// Every 16th pick per shard group ignores replica health, so a replica
/// whose breaker is open keeps receiving the trickle of probe traffic its
/// half-open recovery path needs.
constexpr uint64_t kProbeEvery = 16;

std::vector<obs::Sample> RouterMetricsToSamples(const RouterMetrics& metrics,
                                                const std::string& instance) {
  const obs::Labels labels = {{"router", instance}};
  std::vector<obs::Sample> samples;
  auto counter = [&](const char* name, const char* help, uint64_t value) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kCounter;
    sample.labels = labels;
    sample.value = static_cast<double>(value);
    samples.push_back(std::move(sample));
  };
  auto histogram = [&](const char* name, const char* help,
                       const HistogramSnapshot& snapshot, obs::Labels extra) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kHistogram;
    sample.labels = std::move(extra);
    sample.labels.insert(labels.begin(), labels.end());
    sample.histogram = snapshot;
    samples.push_back(std::move(sample));
  };
  counter("ember_router_submitted_total", "Requests accepted into the queue",
          metrics.submitted);
  counter("ember_router_completed_total", "Requests answered with neighbors",
          metrics.completed);
  counter("ember_router_rejected_total", "Requests refused at Submit",
          metrics.rejected);
  counter("ember_router_throttled_total",
          "Requests refused by the per-tenant token bucket",
          metrics.throttled);
  counter("ember_router_expired_total", "Requests shed before embedding",
          metrics.expired);
  counter("ember_router_failed_total", "Requests failed with an error",
          metrics.failed);
  counter("ember_router_deadline_misses_total",
          "Requests completed after their deadline", metrics.deadline_misses);
  counter("ember_router_batches_total", "Micro-batches processed",
          metrics.batches);
  counter("ember_router_retries_total", "Embed retry attempts",
          metrics.retries);
  counter("ember_router_partial_total",
          "Replies merged with at least one shard group missing",
          metrics.partial);
  counter("ember_router_shards_degraded_total",
          "(request, shard group) pairs no replica answered",
          metrics.shards_degraded);
  counter("ember_router_sibling_retries_total",
          "Replica fail-overs during fan-out or gather",
          metrics.sibling_retries);
  counter("ember_router_upserts_total",
          "Upserts admitted by their owning shard group", metrics.upserts);
  counter("ember_router_deletes_total",
          "Deletes published by their owning shard group", metrics.deletes);
  counter("ember_router_mutation_failures_total",
          "Mutations refused fail-closed (owning group down)",
          metrics.mutation_failures);
  counter("ember_router_mutation_divergence_total",
          "Mutations whose replicas disagreed or partially failed",
          metrics.mutation_divergence);
  counter("ember_router_quarantines_total",
          "Replicas pulled from rotation pending recovery",
          metrics.quarantines);
  counter("ember_router_catchups_total",
          "Replicas healed by mutation-log replay", metrics.catchups);
  counter("ember_router_resyncs_total",
          "Replicas healed by snapshot resync", metrics.resyncs);
  counter("ember_router_replayed_mutations_total",
          "Log records re-applied during catch-up",
          metrics.replayed_mutations);
  counter("ember_router_digest_mismatches_total",
          "Anti-entropy digest probes that caught a divergent replica",
          metrics.digest_mismatches);
  for (size_t s = 0; s < metrics.last_applied_seq.size(); ++s) {
    for (size_t r = 0; r < metrics.last_applied_seq[s].size(); ++r) {
      obs::Sample sample;
      sample.name = "ember_router_replica_last_applied_seq";
      sample.help = "Last group mutation seq the replica has applied";
      sample.kind = obs::MetricKind::kGauge;
      sample.labels = {{"router", instance},
                       {"shard", std::to_string(s)},
                       {"replica", std::to_string(r)}};
      sample.value = static_cast<double>(metrics.last_applied_seq[s][r]);
      samples.push_back(std::move(sample));
    }
  }
  histogram("ember_router_queue_micros", "Submit to dequeue wait per request",
            metrics.queue_micros, {});
  histogram("ember_router_embed_micros", "Embed-once time per batch",
            metrics.embed_micros, {});
  histogram("ember_router_fanout_micros", "Scatter submit time per batch",
            metrics.fanout_micros, {});
  histogram("ember_router_gather_micros",
            "Shard future wait time per batch", metrics.gather_micros, {});
  histogram("ember_router_merge_micros",
            "K-way merge + completion time per batch", metrics.merge_micros,
            {});
  histogram("ember_router_total_micros", "Submit to completion per request",
            metrics.total_micros, {});
  histogram("ember_router_batch_size", "Live requests per processed batch",
            metrics.batch_size, {});
  for (size_t s = 0; s < metrics.shard_micros.size(); ++s) {
    for (size_t r = 0; r < metrics.shard_micros[s].size(); ++r) {
      histogram("ember_router_shard_micros",
                "Per-replica round trip observed from the router's gather",
                metrics.shard_micros[s][r],
                {{"shard", std::to_string(s)},
                 {"replica", std::to_string(r)}});
    }
  }
  // Per-tenant breakdown (DESIGN.md §16): rows exist only for tenant-aware
  // traffic, so untenanted routers export the pre-PR10 sample set exactly.
  for (const TenantCounters& tenant : metrics.tenants) {
    const obs::Labels tenant_labels = {{"router", instance},
                                       {"tenant", tenant.tenant}};
    auto tenant_counter = [&](const char* name, const char* help,
                              uint64_t value) {
      obs::Sample sample;
      sample.name = name;
      sample.help = help;
      sample.kind = obs::MetricKind::kCounter;
      sample.labels = tenant_labels;
      sample.value = static_cast<double>(value);
      samples.push_back(std::move(sample));
    };
    tenant_counter("ember_router_tenant_submitted_total",
                   "Per-tenant requests accepted into the queue",
                   tenant.submitted);
    tenant_counter("ember_router_tenant_completed_total",
                   "Per-tenant requests completed", tenant.completed);
    tenant_counter("ember_router_tenant_throttled_total",
                   "Per-tenant requests refused by the token bucket",
                   tenant.throttled);
    tenant_counter("ember_router_tenant_rejected_total",
                   "Per-tenant requests refused by backpressure",
                   tenant.rejected);
    tenant_counter("ember_router_tenant_expired_total",
                   "Per-tenant requests shed past their deadline",
                   tenant.expired);
    tenant_counter("ember_router_tenant_failed_total",
                   "Per-tenant requests failed with an error", tenant.failed);
    tenant_counter("ember_router_tenant_deadline_misses_total",
                   "Per-tenant requests completed after their deadline",
                   tenant.deadline_misses);
    obs::Sample latency;
    latency.name = "ember_router_tenant_total_micros";
    latency.help = "Per-tenant submit to completion latency";
    latency.kind = obs::MetricKind::kHistogram;
    latency.labels = tenant_labels;
    latency.histogram = tenant.total_micros;
    samples.push_back(std::move(latency));
  }
  return samples;
}

}  // namespace

std::vector<index::Neighbor> MergeTopK(
    const std::vector<std::vector<index::Neighbor>>& per_shard, size_t k) {
  // Heads of the still-live lists; the heap pops the globally closest head.
  // CloserThan never compares equal elements across lists (ids are unique
  // after global remap), so the pop order — and therefore the result — is
  // independent of shard count and arrival order.
  struct Head {
    size_t list;
    size_t pos;
  };
  auto after = [&](const Head& a, const Head& b) {
    // priority_queue keeps the LARGEST on top, so "a after b" = b closer.
    return index::CloserThan(per_shard[b.list][b.pos],
                             per_shard[a.list][a.pos]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heap(after);
  for (size_t l = 0; l < per_shard.size(); ++l) {
    if (!per_shard[l].empty()) heap.push({l, 0});
  }
  std::vector<index::Neighbor> merged;
  merged.reserve(k);
  while (merged.size() < k && !heap.empty()) {
    Head head = heap.top();
    heap.pop();
    merged.push_back(per_shard[head.list][head.pos]);
    if (++head.pos < per_shard[head.list].size()) heap.push(head);
  }
  return merged;
}

Result<std::vector<Snapshot>> BuildShardSnapshots(
    SnapshotManifest base, const la::Matrix& corpus, uint32_t shard_count,
    const index::HnswOptions& hnsw_options,
    const index::LshOptions& lsh_options) {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  std::vector<la::Matrix> parts = core::PartitionRoundRobin(corpus,
                                                            shard_count);
  std::vector<Snapshot> shards;
  shards.reserve(shard_count);
  for (uint32_t s = 0; s < shard_count; ++s) {
    SnapshotManifest manifest = base;
    manifest.shard_id = s;
    manifest.shard_count = shard_count;
    manifest.row_offset = s;
    shards.push_back(Snapshot::Build(std::move(manifest), std::move(parts[s]),
                                     hnsw_options, lsh_options));
  }
  return shards;
}

Result<std::vector<Snapshot>> LoadShardSet(
    const std::vector<std::string>& paths, const LoadOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("shard set has no files");
  }
  std::vector<Snapshot> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<Snapshot> loaded = Snapshot::LoadFrom(path, options);
    if (!loaded.ok()) {
      return Status::IoError("shard '" + path +
                             "': " + loaded.status().ToString());
    }
    shards.push_back(std::move(loaded.value()));
  }
  const SnapshotManifest& first = shards.front().manifest();
  if (first.shard_count != shards.size()) {
    return Status::InvalidArgument(
        "shard set has " + std::to_string(shards.size()) +
        " files but the manifests declare " +
        std::to_string(first.shard_count) + " shards");
  }
  std::vector<bool> seen(shards.size(), false);
  for (size_t i = 0; i < shards.size(); ++i) {
    const SnapshotManifest& m = shards[i].manifest();
    if (m.shard_count != first.shard_count) {
      return Status::InvalidArgument(
          "shard '" + paths[i] + "' declares shard_count " +
          std::to_string(m.shard_count) + " but the set has " +
          std::to_string(first.shard_count));
    }
    if (m.model_code != first.model_code || m.dim != first.dim) {
      return Status::InvalidArgument(
          "shard '" + paths[i] + "' model fingerprint " + m.model_code +
          "/" + std::to_string(m.dim) + " does not match " +
          first.model_code + "/" + std::to_string(first.dim));
    }
    if (m.kind != first.kind || m.storage != first.storage ||
        m.default_k != first.default_k) {
      return Status::InvalidArgument(
          "shard '" + paths[i] +
          "' disagrees on index kind/storage/default_k with the set");
    }
    if (seen[m.shard_id]) {
      return Status::InvalidArgument("duplicate shard_id " +
                                     std::to_string(m.shard_id) +
                                     " in shard set ('" + paths[i] + "')");
    }
    seen[m.shard_id] = true;
  }
  // shard_id < shard_count is a load-time manifest invariant, so N distinct
  // ids over N files is full coverage; sort into plan order.
  std::sort(shards.begin(), shards.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return a.manifest().shard_id < b.manifest().shard_id;
            });
  return shards;
}

Result<std::unique_ptr<Router>> Router::Create(
    std::vector<std::unique_ptr<Engine>> engines,
    std::shared_ptr<embed::EmbeddingModel> model,
    const RouterOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("router requires an embed-once model");
  }
  if (engines.empty()) {
    return Status::InvalidArgument("router requires at least one engine");
  }
  for (const auto& engine : engines) {
    if (engine == nullptr) {
      return Status::InvalidArgument("router engine list holds a null");
    }
  }
  const SnapshotManifest first = engines.front()->snapshot()->manifest();
  const uint32_t shard_count = first.shard_count;
  std::vector<ShardGroup> groups(shard_count);
  uint64_t total_rows = 0;
  for (auto& engine : engines) {
    const SnapshotManifest m = engine->snapshot()->manifest();
    if (m.shard_count != shard_count) {
      return Status::InvalidArgument(
          "engine shard_count " + std::to_string(m.shard_count) +
          " does not match the fleet's " + std::to_string(shard_count));
    }
    if (m.model_code != first.model_code || m.dim != first.dim) {
      return Status::InvalidArgument(
          "engine model fingerprint " + m.model_code + "/" +
          std::to_string(m.dim) + " does not match " + first.model_code +
          "/" + std::to_string(first.dim));
    }
    if (m.kind != first.kind || m.storage != first.storage) {
      return Status::InvalidArgument(
          "engines disagree on index kind/storage across the fleet");
    }
    ShardGroup& group = groups[m.shard_id];
    if (group.engines.empty()) {
      group.row_offset = m.row_offset;
      total_rows += m.rows;
    } else {
      const SnapshotManifest peer =
          group.engines.front()->snapshot()->manifest();
      if (m.rows != peer.rows || m.row_offset != peer.row_offset) {
        return Status::InvalidArgument(
            "replicas of shard " + std::to_string(m.shard_id) +
            " disagree on rows/row_offset");
      }
    }
    group.engines.push_back(std::move(engine));
  }
  if (model->info().code != first.model_code) {
    return Status::InvalidArgument(
        "shards were built with model '" + first.model_code +
        "' but the router embeds with '" + model->info().code + "'");
  }
  if (model->info().dim != first.dim && first.rows > 0) {
    return Status::InvalidArgument("router model/shard dim mismatch");
  }
  const core::ShardPlan plan{shard_count, total_rows};
  const size_t k = options.k > 0 ? options.k
                                 : std::max<size_t>(1, first.default_k);
  for (uint32_t s = 0; s < shard_count; ++s) {
    if (groups[s].engines.empty()) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " has no replicas");
    }
    const SnapshotManifest m = groups[s].engines.front()->snapshot()->manifest();
    if (m.rows != plan.RowsInShard(s)) {
      return Status::InvalidArgument(
          "shard " + std::to_string(s) + " holds " + std::to_string(m.rows) +
          " rows but the round-robin plan over " +
          std::to_string(total_rows) + " expects " +
          std::to_string(plan.RowsInShard(s)));
    }
    for (const auto& engine : groups[s].engines) {
      const size_t engine_k = engine->options().k > 0
                                  ? engine->options().k
                                  : std::max<size_t>(1, m.default_k);
      if (engine_k < k) {
        return Status::InvalidArgument(
            "shard " + std::to_string(s) + " replica answers top-" +
            std::to_string(engine_k) + " but the router merges top-" +
            std::to_string(k) + " — per-shard k must be >= the merged k");
      }
    }
  }
  model->Initialize();
  return std::unique_ptr<Router>(
      new Router(std::move(groups), std::move(model), options));
}

Router::Router(std::vector<ShardGroup> groups,
               std::shared_ptr<embed::EmbeddingModel> model,
               const RouterOptions& options)
    : groups_(std::move(groups)),
      model_(std::move(model)),
      options_(options),
      shard_count_(static_cast<uint32_t>(groups_.size())),
      admission_(options.quotas) {
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_wait_micros = std::max<int64_t>(0, options_.max_wait_micros);
  options_.log_capacity = std::max<size_t>(1, options_.log_capacity);
  const SnapshotManifest& first =
      groups_.front().engines.front()->snapshot()->manifest();
  k_ = options_.k > 0 ? options_.k : std::max<size_t>(1, first.default_k);
  shard_micros_.resize(groups_.size());
  for (size_t s = 0; s < groups_.size(); ++s) {
    for (size_t r = 0; r < groups_[s].engines.size(); ++r) {
      shard_micros_[s].push_back(std::make_unique<LatencyHistogram>());
    }
    groups_[s].log =
        std::make_unique<recover::MutationLog>(options_.log_capacity);
    groups_[s].expected_rows =
        groups_[s].engines.front()->snapshot()->manifest().rows;
    for (size_t r = 0; r < groups_[s].engines.size(); ++r) {
      groups_[s].meta.push_back(std::make_unique<ReplicaMeta>());
    }
  }
  static std::atomic<uint64_t> next_instance{0};
  instance_ = std::to_string(next_instance.fetch_add(1));
  collector_id_ = obs::Registry::Global().AddCollector(
      [this] { return RouterMetricsToSamples(Metrics(), instance_); });
  collector_registered_.store(true, std::memory_order_release);
  workers_.reserve(options_.workers);
  for (size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.recover_tick_micros > 0) {
    recovery_worker_ = std::thread([this] { RecoveryLoop(); });
  }
}

Router::~Router() { Stop(); }

void Router::Stop() {
  if (collector_registered_.exchange(false, std::memory_order_acq_rel)) {
    obs::Registry::Global().RemoveCollector(collector_id_);
  }
  // The recovery worker goes first: it must not be mid-replay against an
  // engine the shutdown sequence is about to stop.
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    recovery_stop_ = true;
  }
  recovery_cv_.notify_all();
  if (recovery_worker_.joinable()) recovery_worker_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Engines stop after the router drains: in-flight fan-outs keep their
  // shard queues alive until every router promise is settled.
  for (ShardGroup& group : groups_) {
    for (auto& engine : group.engines) engine->Stop();
  }
}

Result<std::future<Result<RouterReply>>> Router::Submit(std::string record,
                                                        SteadyTime deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return Submit(std::move(record), opts);
}

Result<std::future<Result<RouterReply>>> Router::Submit(
    std::string record, const SubmitOptions& opts) {
  const std::string tenant = opts.tenant;
  const bool tracked = admission_.enabled() || !tenant.empty();
  // Token-bucket admission FIRST (DESIGN.md §16), before the queue bound:
  // the throttle verdict depends only on the quota and admit timestamps,
  // never on queue depth, so replayed traces reproduce it exactly.
  if (admission_.enabled()) {
    obs::Span admit_span("router/admit");
    const SteadyTime now =
        opts.admit_time == kAdmitNow ? SteadyNow() : opts.admit_time;
    Status admitted = admission_.Admit(tenant, now);
    if (!admitted.ok()) {
      throttled_.fetch_add(1, std::memory_order_relaxed);
      ledger_.Record(tenant, TenantLedger::Event::kThrottled);
      return admitted;
    }
  }
  Request request;
  request.record = std::move(record);
  request.deadline = opts.deadline;
  request.tenant = tenant;
  request.enqueued = SteadyNow();
  std::future<Result<RouterReply>> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (tracked) ledger_.Record(tenant, TenantLedger::Event::kRejected);
      return Status::Unavailable("router is stopped");
    }
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (tracked) ledger_.Record(tenant, TenantLedger::Event::kRejected);
      return Status::Unavailable("queue full (" +
                                 std::to_string(options_.max_queue) + ")");
    }
    request.seq = queue_seq_++;
    queue_.push_back(std::move(request));
    std::push_heap(queue_.begin(), queue_.end(),
                   RequestUrgency{options_.queue_policy});
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (tracked) ledger_.Record(tenant, TenantLedger::Event::kSubmitted);
  }
  queue_cv_.notify_one();
  return future;
}

void Router::Quarantine(ShardGroup& group, size_t replica, bool divergent,
                        const char* reason) {
  ReplicaMeta& meta = *group.meta[replica];
  if (divergent) meta.divergent.store(true, std::memory_order_release);
  uint32_t expected = static_cast<uint32_t>(ReplicaState::kActive);
  if (meta.state.compare_exchange_strong(
          expected, static_cast<uint32_t>(ReplicaState::kQuarantined),
          std::memory_order_acq_rel)) {
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    EMBER_WARN("replica quarantined (%s)", reason);
  }
}

Result<uint64_t> Router::BroadcastMutation(
    ShardGroup& group, recover::MutationRecord record,
    const std::function<Result<std::future<Result<MutateReply>>>(Engine&)>&
        apply) {
  // Serialize mutations within the group: replicas assign local ids from
  // their own monotone counters, so they must observe upserts in one order
  // to stay interchangeable for reads.
  std::lock_guard<std::mutex> lock(group.mutate_mu);
  const bool is_upsert = record.op == recover::MutationRecord::Op::kUpsert;
  // Log FIRST, fail-closed: a mutation the log cannot record must be
  // refused, or a later catch-up would silently miss it (DESIGN.md §15).
  Result<uint64_t> appended = group.log->Append(std::move(record));
  if (!appended.ok()) {
    mutation_failures_.fetch_add(1, std::memory_order_relaxed);
    return appended.status();
  }
  const uint64_t seq = appended.value();
  bool any_ok = false;
  bool divergent = false;
  uint64_t winner = 0;
  std::vector<size_t> missed;  // accepted nowhere-to-quarantine until any_ok
  Status last_error = Status::Unavailable("shard group has no active replicas");
  for (size_t r = 0; r < group.engines.size(); ++r) {
    ReplicaMeta& meta = *group.meta[r];
    if (meta.state.load(std::memory_order_acquire) !=
        static_cast<uint32_t>(ReplicaState::kActive)) {
      // Quarantined/killed replicas sit out the broadcast; the log entry is
      // what they will replay during catch-up.
      continue;
    }
    Result<std::future<Result<MutateReply>>> submitted = apply(*group.engines[r]);
    Result<MutateReply> reply =
        submitted.ok() ? submitted.value().get()
                       : Result<MutateReply>(submitted.status());
    if (!reply.ok()) {
      last_error = reply.status();
      missed.push_back(r);
      continue;
    }
    if (!any_ok) {
      any_ok = true;
      winner = reply.value().id;
      meta.last_applied.store(seq, std::memory_order_release);
    } else if (reply.value().id != winner) {
      // The replica admitted the row under a different local id: its state
      // machine has drifted and every answer it serves is suspect. Out of
      // rotation immediately; only a snapshot resync may readmit it.
      divergent = true;
      Quarantine(group, r, /*divergent=*/true, "mutation id divergence");
    } else {
      meta.last_applied.store(seq, std::memory_order_release);
    }
  }
  if (!any_ok) {
    // Fail-closed: the owning group is fully down (or unanimously refused)
    // and the mutation landed NOWHERE — roll the log back so catch-up never
    // replays a mutation that did not happen, and leave the replicas alone:
    // a unanimous refusal means they still agree with each other.
    group.log->PopLast();
    mutation_failures_.fetch_add(1, std::memory_order_relaxed);
    return last_error;
  }
  // A replica that missed a mutation a sibling accepted is behind the log:
  // quarantine it (satellite of DESIGN.md §15 — no more half-measure where
  // a diverged replica kept serving queries).
  for (size_t r : missed) {
    divergent = true;
    Quarantine(group, r, /*divergent=*/false, "replica missed a mutation");
  }
  // Commit exposes the record to replay with the id the fleet actually
  // assigned, so replay reproduces (and can verify) the winner's
  // assignment; until this point a concurrent catch-up could not see it.
  group.log->CommitLast(winner);
  if (is_upsert) {
    ++group.expected_rows;
  } else if (group.expected_rows > 0) {
    --group.expected_rows;
  }
  if (divergent) {
    // Some replica missed or disagreed on the mutation. Surfaced as a
    // counter, not a failure — the mutation IS durable on the winners and
    // the recovery worker owns healing the stragglers.
    mutation_divergence_.fetch_add(1, std::memory_order_relaxed);
    EMBER_WARN("shard replicas diverged on a mutation (winner id %llu)",
               static_cast<unsigned long long>(winner));
  }
  return winner;
}

Result<uint64_t> Router::Upsert(const std::string& record) {
  const uint64_t ticket =
      mutation_ticket_.fetch_add(1, std::memory_order_relaxed);
  // Embed once, under the same failpoint/retry regime as the query path —
  // the owning group's replicas all receive the identical vector.
  la::Matrix vectors;
  uint64_t embed_retries = 0;
  Status embedded = RetryStatus(
      options_.embed_retry, ticket,
      [&] {
        Status injected = fail::Check("router/embed");
        if (!injected.ok()) return injected;
        vectors = model_->VectorizeAll({record});
        return Status::Ok();
      },
      &embed_retries);
  retries_.fetch_add(embed_retries, std::memory_order_relaxed);
  if (!embedded.ok()) {
    mutation_failures_.fetch_add(1, std::memory_order_relaxed);
    return embedded;
  }
  std::vector<float> embedding(vectors.Row(0),
                               vectors.Row(0) + vectors.cols());
  // Owner = round-robin over groups, mirroring how the build-time
  // partitioner spreads rows. The global id comes back out of the shard's
  // local assignment: global = shard + local * N, the inverse of the
  // query-path remap (DESIGN.md §13).
  const uint32_t shard = static_cast<uint32_t>(ticket % groups_.size());
  recover::MutationRecord logged;
  logged.op = recover::MutationRecord::Op::kUpsert;
  logged.embedding = embedding;
  Result<uint64_t> local =
      BroadcastMutation(groups_[shard], std::move(logged),
                        [&](Engine& engine) {
                          return engine.UpsertEmbedded(embedding);
                        });
  if (!local.ok()) return local.status();
  upserts_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<uint64_t>(shard) +
         local.value() * static_cast<uint64_t>(groups_.size());
}

Status Router::Delete(uint64_t global_id) {
  const uint32_t shard = static_cast<uint32_t>(global_id % groups_.size());
  const uint64_t local = global_id / groups_.size();
  recover::MutationRecord record;
  record.op = recover::MutationRecord::Op::kDelete;
  record.id = local;
  Result<uint64_t> done =
      BroadcastMutation(groups_[shard], std::move(record),
                        [&](Engine& engine) {
                          return engine.Delete(local);
                        });
  if (!done.ok()) return done.status();
  deletes_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Router::KillReplica(uint32_t shard, size_t replica) {
  if (shard >= groups_.size() || replica >= groups_[shard].engines.size()) {
    return Status::InvalidArgument("no such replica");
  }
  // Under the group lock so an in-flight broadcast finishes first: the
  // replica leaves rotation at a mutation boundary, never mid-record.
  ShardGroup& group = groups_[shard];
  std::lock_guard<std::mutex> lock(group.mutate_mu);
  ReplicaMeta& meta = *group.meta[replica];
  meta.state.store(static_cast<uint32_t>(ReplicaState::kKilled),
                   std::memory_order_release);
  return Status::Ok();
}

Status Router::RejoinReplica(uint32_t shard, size_t replica) {
  if (shard >= groups_.size() || replica >= groups_[shard].engines.size()) {
    return Status::InvalidArgument("no such replica");
  }
  ShardGroup& group = groups_[shard];
  ReplicaMeta& meta = *group.meta[replica];
  uint32_t expected = static_cast<uint32_t>(ReplicaState::kKilled);
  if (!meta.state.compare_exchange_strong(
          expected, static_cast<uint32_t>(ReplicaState::kQuarantined),
          std::memory_order_acq_rel)) {
    return Status::InvalidArgument("replica is not killed");
  }
  // It rejoins through quarantine: the recovery worker replays what it
  // missed and only then returns it to rotation.
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  recovery_cv_.notify_all();
  return Status::Ok();
}

ReplicaState Router::replica_state(uint32_t shard, size_t replica) const {
  return static_cast<ReplicaState>(
      groups_[shard].meta[replica]->state.load(std::memory_order_acquire));
}

uint64_t Router::last_applied_seq(uint32_t shard, size_t replica) const {
  return groups_[shard].meta[replica]->last_applied.load(
      std::memory_order_acquire);
}

uint64_t Router::log_last_seq(uint32_t shard) const {
  return groups_[shard].log->last_seq();
}

bool Router::Converged() const {
  for (const ShardGroup& group : groups_) {
    for (const auto& meta : group.meta) {
      if (meta->state.load(std::memory_order_acquire) !=
          static_cast<uint32_t>(ReplicaState::kActive)) {
        return false;
      }
    }
  }
  return true;
}

void Router::RecoveryLoop() {
  std::unique_lock<std::mutex> lock(recovery_mu_);
  for (;;) {
    recovery_cv_.wait_for(
        lock, std::chrono::microseconds(options_.recover_tick_micros),
        [this] { return recovery_stop_; });
    if (recovery_stop_) return;
    lock.unlock();
    RecoveryTick();
    lock.lock();
  }
}

void Router::RecoveryTick() {
  for (size_t g = 0; g < groups_.size(); ++g) {
    ShardGroup& group = groups_[g];
    // An open breaker means the replica has been refusing work — it may
    // have missed broadcasts, so it is pulled from rotation proactively and
    // readmitted through the same catch-up gate as everyone else.
    for (size_t r = 0; r < group.engines.size(); ++r) {
      if (group.engines[r]->health() == Health::kTripped) {
        Quarantine(group, r, /*divergent=*/false, "circuit breaker tripped");
      }
    }
    ProbeGroupDigests(g);
    for (size_t r = 0; r < group.engines.size(); ++r) {
      if (group.meta[r]->state.load(std::memory_order_acquire) ==
          static_cast<uint32_t>(ReplicaState::kQuarantined)) {
        TryHeal(g, r);
      }
    }
  }
}

void Router::ProbeGroupDigests(size_t group_index) {
  ShardGroup& group = groups_[group_index];
  // Under the group lock: no broadcast is between replicas, so every active
  // replica has applied exactly the same mutation prefix and matching
  // digests are the expected steady state.
  std::lock_guard<std::mutex> lock(group.mutate_mu);
  struct Probe {
    size_t replica;
    recover::CorpusDigest digest;
  };
  std::vector<Probe> probes;
  for (size_t r = 0; r < group.engines.size(); ++r) {
    if (group.meta[r]->state.load(std::memory_order_acquire) !=
        static_cast<uint32_t>(ReplicaState::kActive)) {
      continue;
    }
    Result<recover::CorpusDigest> digest = group.engines[r]->Digest();
    if (!digest.ok()) {
      // Fail-closed (recover/digest failpoint lands here): with no digest
      // there is no verdict — the replica is neither trusted nor condemned
      // this tick.
      return;
    }
    probes.push_back({r, digest.value()});
  }
  if (probes.size() < 2) return;
  // Majority vote over (rows, content). A strict majority (more than half
  // the probes agreeing) is trusted outright. Without one, the router's
  // own mutation accounting (expected_rows) may break the tie — but ONLY
  // when it points at exactly one of the tied content classes. Otherwise
  // there is NO verdict this tick: with two replicas and equal row counts
  // (e.g. a silent bit flip) any deterministic tie-break can crown the
  // corrupted replica, quarantine the healthy one, and then resync it FROM
  // the corrupted donor — propagating the corruption group-wide. Failing
  // closed leaves both serving until a sibling, a mutation mismatch, or an
  // operator breaks the symmetry.
  std::vector<size_t> votes(probes.size(), 0);
  for (size_t i = 0; i < probes.size(); ++i) {
    for (const Probe& other : probes) {
      if (recover::SameContent(probes[i].digest, other.digest)) ++votes[i];
    }
  }
  const size_t max_votes = *std::max_element(votes.begin(), votes.end());
  size_t best = probes.size();
  if (max_votes > probes.size() / 2) {
    // A strict majority is a single content class; its first member
    // represents it.
    for (size_t i = 0; i < probes.size(); ++i) {
      if (votes[i] == max_votes) {
        best = i;
        break;
      }
    }
  } else {
    // Distinct content classes among the max-vote contenders.
    std::vector<size_t> leaders;
    for (size_t i = 0; i < probes.size(); ++i) {
      if (votes[i] != max_votes) continue;
      bool seen = false;
      for (size_t j : leaders) {
        if (recover::SameContent(probes[j].digest, probes[i].digest)) {
          seen = true;
          break;
        }
      }
      if (!seen) leaders.push_back(i);
    }
    size_t expected_leaders = 0;
    for (size_t i : leaders) {
      if (probes[i].digest.rows == group.expected_rows) {
        best = i;
        ++expected_leaders;
      }
    }
    if (expected_leaders != 1) return;  // fail closed: no verdict this tick
  }
  for (const Probe& probe : probes) {
    if (recover::SameContent(probe.digest, probes[best].digest)) continue;
    digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
    // A digest liar's corpus is wrong in an unknown way: replaying the log
    // suffix cannot fix it, so it is marked divergent to force a resync.
    Quarantine(group, probe.replica, /*divergent=*/true,
               "anti-entropy digest mismatch");
  }
}

bool Router::Activate(ShardGroup& group, ReplicaMeta& meta) {
  // Caller holds group.mutate_mu: no broadcast is in flight, so the log's
  // last_seq IS the group's committed frontier and nothing can land between
  // this store and the replica re-entering rotation.
  meta.last_applied.store(group.log->last_seq(), std::memory_order_release);
  meta.divergent.store(false, std::memory_order_release);
  uint32_t expected = static_cast<uint32_t>(ReplicaState::kCatchingUp);
  // CAS, not store: an admin KillReplica that landed mid-heal must stick —
  // a healed-but-killed replica stays out of rotation.
  return meta.state.compare_exchange_strong(
      expected, static_cast<uint32_t>(ReplicaState::kActive),
      std::memory_order_acq_rel);
}

bool Router::TryHeal(size_t group_index, size_t replica) {
  ShardGroup& group = groups_[group_index];
  Engine& target = *group.engines[replica];
  ReplicaMeta& meta = *group.meta[replica];
  uint32_t expected = static_cast<uint32_t>(ReplicaState::kQuarantined);
  if (!meta.state.compare_exchange_strong(
          expected, static_cast<uint32_t>(ReplicaState::kCatchingUp),
          std::memory_order_acq_rel)) {
    return false;
  }
  bool healed = false;
  if (!target.live()) {
    // Frozen replicas have no mutation stream to replay: readmission just
    // requires a closed breaker and a digest that matches an active
    // sibling's.
    if (target.health() != Health::kTripped) {
      Result<recover::CorpusDigest> mine = target.Digest();
      if (mine.ok()) {
        std::lock_guard<std::mutex> lock(group.mutate_mu);
        for (size_t r = 0; r < group.engines.size(); ++r) {
          if (r == replica ||
              group.meta[r]->state.load(std::memory_order_acquire) !=
                  static_cast<uint32_t>(ReplicaState::kActive)) {
            continue;
          }
          Result<recover::CorpusDigest> theirs = group.engines[r]->Digest();
          if (theirs.ok() &&
              recover::SameContent(mine.value(), theirs.value())) {
            healed = Activate(group, meta);
            break;
          }
        }
      }
    }
    if (healed) catchups_.fetch_add(1, std::memory_order_relaxed);
  } else if (meta.divergent.load(std::memory_order_acquire) ||
             group.log->first_seq() >
                 meta.last_applied.load(std::memory_order_acquire) + 1) {
    // Untrusted state or the ring already dropped records it needs: only a
    // snapshot resync can readmit it.
    healed = ResyncReplica(group, group_index, replica);
  } else {
    healed = ReplayReplica(group, replica);
    if (!healed && (meta.divergent.load(std::memory_order_acquire) ||
                    group.log->first_seq() >
                        meta.last_applied.load(std::memory_order_acquire) +
                            1)) {
      // Replay disqualified itself (id mismatch, or a fast writer outran
      // the ring): fall straight through to resync rather than waiting a
      // tick.
      healed = ResyncReplica(group, group_index, replica);
    }
  }
  if (!healed) {
    // Back to quarantine for the next tick — CAS so an external transition
    // (admin kill) that claimed the replica mid-heal sticks.
    expected = static_cast<uint32_t>(ReplicaState::kCatchingUp);
    meta.state.compare_exchange_strong(
        expected, static_cast<uint32_t>(ReplicaState::kQuarantined),
        std::memory_order_acq_rel);
  }
  return healed;
}

Status Router::ApplyRecords(
    Engine& engine, ReplicaMeta& meta,
    const std::vector<recover::MutationRecord>& records) {
  // Submissions are pipelined: the engine's mutation queue is FIFO, so a
  // window of in-flight futures preserves replay order while amortizing
  // the batcher's max-wait across the window instead of paying it per
  // record. After a failure the already-submitted suffix (bounded by the
  // window) may still land on the replica; every failure path below either
  // marks the replica divergent or leaves it quarantined, and the next
  // replay attempt over the over-applied suffix trips the divergent-id
  // check, so snapshot resync always covers the damage.
  constexpr size_t kWindow = 64;
  std::deque<std::pair<const recover::MutationRecord*,
                       std::future<Result<MutateReply>>>>
      inflight;
  Status result = Status::Ok();
  const auto drain_one = [&]() {
    const recover::MutationRecord* record = inflight.front().first;
    Result<MutateReply> reply = inflight.front().second.get();
    inflight.pop_front();
    if (!result.ok()) return;  // already failed: just drain the window
    if (record->op == recover::MutationRecord::Op::kUpsert) {
      if (!reply.ok()) {
        result = reply.status();
        return;
      }
      if (reply.value().id != record->id) {
        // The replica's id counter disagrees with the fleet's history:
        // replay cannot converge it. Resync takes over.
        meta.divergent.store(true, std::memory_order_release);
        result = Status::Internal("replayed upsert assigned a divergent id");
        return;
      }
    } else if (!reply.ok()) {
      if (reply.status().code() == Status::Code::kNotFound) {
        // Deleting a row the replica never had means its state already
        // drifted from the log's history.
        meta.divergent.store(true, std::memory_order_release);
      }
      result = reply.status();
      return;
    }
    meta.last_applied.store(record->seq, std::memory_order_release);
    replayed_mutations_.fetch_add(1, std::memory_order_relaxed);
  };
  for (const recover::MutationRecord& record : records) {
    if (!result.ok()) break;
    auto submitted = record.op == recover::MutationRecord::Op::kUpsert
                         ? engine.UpsertEmbedded(record.embedding)
                         : engine.Delete(record.id);
    if (!submitted.ok()) {
      result = submitted.status();
      break;
    }
    inflight.emplace_back(&record, std::move(submitted).value());
    if (inflight.size() >= kWindow) drain_one();
  }
  while (!inflight.empty()) drain_one();
  return result;
}

bool Router::ReplayReplica(ShardGroup& group, size_t replica) {
  // Fail-closed: an armed recover/replay failpoint aborts the attempt
  // before any record is re-applied — the replica simply stays quarantined.
  Status injected = fail::Check("recover/replay");
  if (!injected.ok()) return false;
  Engine& target = *group.engines[replica];
  ReplicaMeta& meta = *group.meta[replica];
  // Bulk rounds off-lock: writers keep writing while the replica chews
  // through the backlog. Bounded so a fast writer cannot stall the
  // hand-off forever.
  for (int round = 0; round < 4; ++round) {
    Result<std::vector<recover::MutationRecord>> records =
        group.log->ReadFrom(meta.last_applied.load(std::memory_order_acquire));
    if (!records.ok()) return false;  // truncated: caller falls to resync
    if (records.value().empty()) break;
    if (!ApplyRecords(target, meta, records.value()).ok()) return false;
  }
  // Hand-off: the final tail replays AND the replica reactivates under the
  // group lock, so no mutation can slip between the replica's last record
  // and its return to rotation — it rejoins exactly at log.last_seq().
  std::lock_guard<std::mutex> lock(group.mutate_mu);
  Result<std::vector<recover::MutationRecord>> tail =
      group.log->ReadFrom(meta.last_applied.load(std::memory_order_acquire));
  if (!tail.ok()) return false;
  if (!ApplyRecords(target, meta, tail.value()).ok()) return false;
  if (!Activate(group, meta)) return false;
  catchups_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Router::ResyncReplica(ShardGroup& group, size_t group_index,
                           size_t replica) {
  // Fail-closed: an armed recover/resync failpoint refuses the attempt
  // before the donor compacts or the target adopts anything.
  Status injected = fail::Check("recover/resync");
  if (!injected.ok()) return false;
  // The whole resync runs under the group lock: the donor's compacted
  // snapshot then covers exactly the log prefix [1, last_seq], so the
  // target rejoins at last_seq with no replay tail to chase.
  std::lock_guard<std::mutex> lock(group.mutate_mu);
  Engine* donor = nullptr;
  for (size_t r = 0; r < group.engines.size(); ++r) {
    if (r == replica) continue;
    if (group.meta[r]->state.load(std::memory_order_acquire) !=
        static_cast<uint32_t>(ReplicaState::kActive)) {
      continue;
    }
    if (!group.engines[r]->live()) continue;
    donor = group.engines[r].get();
    break;
  }
  if (donor == nullptr) return false;
  std::string dir = options_.recovery_dir;
  if (dir.empty()) {
    std::error_code ec;
    dir = std::filesystem::temp_directory_path(ec).string();
    if (ec) return false;
  }
  const std::string path =
      dir + "/ember_resync_" + instance_ + "_g" +
      std::to_string(group_index) + "_" +
      std::to_string(resync_file_counter_.fetch_add(
          1, std::memory_order_relaxed)) +
      ".embs";
  ResyncState state;
  Status compacted = donor->Compact(path, &state);
  if (!compacted.ok()) {
    std::remove(path.c_str());
    EMBER_WARN("resync donor compaction failed: %s",
               compacted.ToString().c_str());
    return false;
  }
  Status adopted = group.engines[replica]->ResyncFrom(path, std::move(state.ids),
                                                      state.next_id);
  std::remove(path.c_str());
  if (!adopted.ok()) {
    EMBER_WARN("resync adoption failed: %s", adopted.ToString().c_str());
    return false;
  }
  if (!Activate(group, *group.meta[replica])) return false;
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Router::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const SteadyTime window_end =
          AfterMicros(queue_.front().enqueued, options_.max_wait_micros);
      queue_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Heap pops drain in urgency order (earliest deadline first under
      // kEdf, arrival order otherwise).
      const RequestUrgency urgency{options_.queue_policy};
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        std::pop_heap(queue_.begin(), queue_.end(), urgency);
        batch.push_back(std::move(queue_.back()));
        queue_.pop_back();
      }
    }
    ProcessBatch(std::move(batch));
  }
}

std::vector<size_t> Router::ReplicaOrder(ShardGroup& group) const {
  const size_t replicas = group.engines.size();
  const uint64_t ticket = group.rotation.fetch_add(1,
                                                   std::memory_order_relaxed);
  std::vector<size_t> order;
  order.reserve(replicas);
  for (size_t i = 0; i < replicas; ++i) {
    const size_t r = (ticket + i) % replicas;
    // Only kActive replicas serve reads. A quarantined replica's answers
    // are suspect by definition — it gets ZERO query traffic until the
    // recovery worker certifies it caught up (DESIGN.md §15). Tripped-but-
    // active replicas stay in the list (moved back below) so their breaker
    // still sees probe traffic.
    if (group.meta[r]->state.load(std::memory_order_acquire) !=
        static_cast<uint32_t>(ReplicaState::kActive)) {
      continue;
    }
    order.push_back(r);
  }
  if (order.size() > 1 && ticket % kProbeEvery != 0) {
    std::stable_partition(order.begin(), order.end(), [&](size_t r) {
      return group.engines[r]->health() != Health::kTripped;
    });
  }
  return order;
}

void Router::ProcessBatch(std::vector<Request> batch) {
  const SteadyTime drained = SteadyNow();
  const uint64_t batch_no = batches_.fetch_add(1, std::memory_order_relaxed);
  obs::Span batch_span("router/batch", obs::Span::RootTag{}, batch_no);
  batch_span.AddCount("requests", batch.size());

  // Per-tenant accounting, active only for tenant-aware traffic.
  auto tenant_event = [this](const Request& request,
                             TenantLedger::Event event) {
    if (admission_.enabled() || !request.tenant.empty()) {
      ledger_.Record(request.tenant, event);
    }
  };

  std::vector<Request> live;
  live.reserve(batch.size());
  {
    obs::Span shed_span("router/dequeue_shed");
    for (Request& request : batch) {
      queue_micros_.Record(MicrosBetween(request.enqueued, drained));
      if (request.deadline < drained) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(request, TenantLedger::Event::kExpired);
        request.promise.set_value(
            Status::DeadlineExceeded("shed before embedding"));
      } else {
        live.push_back(std::move(request));
      }
    }
  }
  if (live.empty()) return;
  batch_span.AddCount("live", live.size());
  batch_size_.Record(static_cast<double>(live.size()));

  std::vector<std::string> sentences;
  sentences.reserve(live.size());
  for (const Request& request : live) sentences.push_back(request.record);

  // Embed ONCE for the whole fleet — the scatter ships vectors, not
  // records, so the (dominant) embed cost does not multiply with N.
  WallTimer timer;
  la::Matrix vectors;
  uint64_t embed_retries = 0;
  Status embedded = Status::Ok();
  {
    obs::Span embed_span("router/embed");
    embedded = RetryStatus(
        options_.embed_retry, batch_no,
        [&] {
          Status injected = fail::Check("router/embed");
          if (!injected.ok()) return injected;
          vectors = model_->VectorizeAll(sentences);
          return Status::Ok();
        },
        &embed_retries);
    embed_span.AddCount("retries", embed_retries);
  }
  retries_.fetch_add(embed_retries, std::memory_order_relaxed);
  embed_micros_.Record(timer.Restart() * 1e6);
  if (!embedded.ok()) {
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (Request& request : live) {
      tenant_event(request, TenantLedger::Event::kFailed);
      request.promise.set_value(embedded);
    }
    EMBER_WARN("router embed stage failed after %llu retries: %s",
               static_cast<unsigned long long>(embed_retries),
               embedded.ToString().c_str());
    return;
  }
  const size_t dim = vectors.cols();

  // Scatter: one replica per shard group per request, health-aware with
  // sibling fail-over at submit time (a refused replica — breaker open,
  // queue full, stopped — costs one extra Submit, not a failed request).
  struct Pending {
    std::future<Result<QueryReply>> future;
    size_t replica = 0;
    bool valid = false;
  };
  std::vector<std::vector<Pending>> pending(live.size());
  for (auto& row : pending) row.resize(groups_.size());
  {
    obs::Span fanout_span("router/fanout");
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t g = 0; g < groups_.size(); ++g) {
        const std::vector<size_t> order = ReplicaOrder(groups_[g]);
        for (size_t attempt = 0; attempt < order.size(); ++attempt) {
          const size_t r = order[attempt];
          std::vector<float> row(vectors.Row(i), vectors.Row(i) + dim);
          auto submitted = groups_[g].engines[r]->SubmitEmbedded(
              std::move(row));
          if (submitted.ok()) {
            pending[i][g].future = std::move(submitted.value());
            pending[i][g].replica = r;
            pending[i][g].valid = true;
            break;
          }
          sibling_retries_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  const SteadyTime scattered = SteadyNow();
  fanout_micros_.Record(timer.Restart() * 1e6);

  // Gather: wait on every shard future; a replica that accepted but then
  // failed gets one synchronous fail-over pass through its siblings.
  std::vector<std::vector<std::vector<index::Neighbor>>> lists(
      live.size(),
      std::vector<std::vector<index::Neighbor>>(groups_.size()));
  std::vector<std::vector<bool>> answered(
      live.size(), std::vector<bool>(groups_.size(), false));
  {
    obs::Span gather_span("router/gather");
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t g = 0; g < groups_.size(); ++g) {
        Result<QueryReply> reply = Status::Unavailable("no replica accepted");
        size_t replica = pending[i][g].replica;
        if (pending[i][g].valid) {
          reply = pending[i][g].future.get();
        }
        if (!reply.ok()) {
          for (size_t r = 0; r < groups_[g].engines.size() && !reply.ok();
               ++r) {
            if (pending[i][g].valid && r == pending[i][g].replica) continue;
            if (groups_[g].meta[r]->state.load(std::memory_order_acquire) !=
                static_cast<uint32_t>(ReplicaState::kActive)) {
              continue;  // never fail over onto a quarantined replica
            }
            std::vector<float> row(vectors.Row(i), vectors.Row(i) + dim);
            auto retried =
                groups_[g].engines[r]->SubmitEmbedded(std::move(row));
            sibling_retries_.fetch_add(1, std::memory_order_relaxed);
            if (!retried.ok()) continue;
            reply = retried.value().get();
            replica = r;
          }
        }
        if (reply.ok()) {
          shard_micros_[g][replica]->Record(
              MicrosBetween(scattered, SteadyNow()));
          lists[i][g] = std::move(reply.value().neighbors);
          index::RemapToGlobal(lists[i][g], groups_[g].row_offset,
                               shard_count_);
          answered[i][g] = true;
        }
      }
    }
  }
  gather_micros_.Record(timer.Restart() * 1e6);

  // Merge + complete. A request missing a whole shard group either degrades
  // to a partial merge over the survivors or fails, per allow_partial.
  {
    obs::Span merge_span("router/merge");
    uint64_t merged_count = 0;
    const SteadyTime done = SteadyNow();
    for (size_t i = 0; i < live.size(); ++i) {
      size_t missing = 0;
      for (size_t g = 0; g < groups_.size(); ++g) {
        if (!answered[i][g]) ++missing;
      }
      shards_degraded_.fetch_add(missing, std::memory_order_relaxed);
      if (missing > 0 && !options_.allow_partial) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(live[i], TenantLedger::Event::kFailed);
        live[i].promise.set_value(Status::Unavailable(
            std::to_string(missing) + " shard group(s) down"));
        continue;
      }
      RouterReply reply;
      reply.neighbors = MergeTopK(lists[i], k_);
      reply.partial = missing > 0;
      if (reply.partial) partial_.fetch_add(1, std::memory_order_relaxed);
      ++merged_count;
      if (live[i].deadline < done) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(live[i], TenantLedger::Event::kDeadlineMiss);
      }
      const int64_t latency = MicrosBetween(live[i].enqueued, done);
      total_micros_.Record(latency);
      if (admission_.enabled() || !live[i].tenant.empty()) {
        ledger_.RecordLatency(live[i].tenant, static_cast<double>(latency));
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      tenant_event(live[i], TenantLedger::Event::kCompleted);
      obs::EmitSpan("router/request", batch_span.context(), i,
                    live[i].enqueued, done);
      live[i].promise.set_value(std::move(reply));
    }
    merge_span.AddCount("merged", merged_count);
  }
  merge_micros_.Record(timer.Restart() * 1e6);
}

Health Router::health() const {
  for (const ShardGroup& group : groups_) {
    bool any_up = false;
    for (size_t r = 0; r < group.engines.size(); ++r) {
      // Only kActive replicas count toward liveness: a quarantined replica
      // is out of rotation and contributes nothing until it catches up.
      if (group.meta[r]->state.load(std::memory_order_acquire) !=
          static_cast<uint32_t>(ReplicaState::kActive)) {
        continue;
      }
      if (group.engines[r]->health() != Health::kTripped) {
        any_up = true;
        break;
      }
    }
    if (!any_up) return Health::kDegraded;
  }
  return Health::kServing;
}

RouterMetrics Router::Metrics() const {
  RouterMetrics metrics;
  metrics.submitted = submitted_.load(std::memory_order_relaxed);
  metrics.completed = completed_.load(std::memory_order_relaxed);
  metrics.rejected = rejected_.load(std::memory_order_relaxed);
  metrics.throttled = throttled_.load(std::memory_order_relaxed);
  metrics.expired = expired_.load(std::memory_order_relaxed);
  metrics.failed = failed_.load(std::memory_order_relaxed);
  metrics.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  metrics.batches = batches_.load(std::memory_order_relaxed);
  metrics.retries = retries_.load(std::memory_order_relaxed);
  metrics.partial = partial_.load(std::memory_order_relaxed);
  metrics.shards_degraded = shards_degraded_.load(std::memory_order_relaxed);
  metrics.sibling_retries = sibling_retries_.load(std::memory_order_relaxed);
  metrics.upserts = upserts_.load(std::memory_order_relaxed);
  metrics.deletes = deletes_.load(std::memory_order_relaxed);
  metrics.mutation_failures =
      mutation_failures_.load(std::memory_order_relaxed);
  metrics.mutation_divergence =
      mutation_divergence_.load(std::memory_order_relaxed);
  metrics.quarantines = quarantines_.load(std::memory_order_relaxed);
  metrics.catchups = catchups_.load(std::memory_order_relaxed);
  metrics.resyncs = resyncs_.load(std::memory_order_relaxed);
  metrics.replayed_mutations =
      replayed_mutations_.load(std::memory_order_relaxed);
  metrics.digest_mismatches =
      digest_mismatches_.load(std::memory_order_relaxed);
  metrics.last_applied_seq.resize(groups_.size());
  metrics.replica_states.resize(groups_.size());
  for (size_t s = 0; s < groups_.size(); ++s) {
    for (const auto& meta : groups_[s].meta) {
      metrics.last_applied_seq[s].push_back(
          meta->last_applied.load(std::memory_order_acquire));
      metrics.replica_states[s].push_back(static_cast<ReplicaState>(
          meta->state.load(std::memory_order_acquire)));
    }
  }
  metrics.queue_micros = queue_micros_.Snapshot();
  metrics.embed_micros = embed_micros_.Snapshot();
  metrics.fanout_micros = fanout_micros_.Snapshot();
  metrics.gather_micros = gather_micros_.Snapshot();
  metrics.merge_micros = merge_micros_.Snapshot();
  metrics.total_micros = total_micros_.Snapshot();
  metrics.batch_size = batch_size_.Snapshot();
  metrics.shard_micros.resize(shard_micros_.size());
  for (size_t s = 0; s < shard_micros_.size(); ++s) {
    for (const auto& histogram : shard_micros_[s]) {
      metrics.shard_micros[s].push_back(histogram->Snapshot());
    }
  }
  metrics.tenants = ledger_.Snapshot();
  return metrics;
}

}  // namespace ember::serve
