#include "serve/admission.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace ember::serve {

const char* QueuePolicyName(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kEdf:
      return "edf";
    case QueuePolicy::kFifo:
      return "fifo";
  }
  return "unknown";
}

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec < 0 ? 0 : rate_per_sec),
      burst_(burst < 1 ? 1 : burst),
      tokens_(burst_) {}

bool TokenBucket::TryAcquire(SteadyTime now) {
  if (!primed_) {
    // First observation establishes the refill epoch; the bucket starts
    // full, so a tenant's initial burst up to `burst_` is always admitted.
    primed_ = true;
    last_ = now;
  } else if (now > last_) {
    double elapsed_sec =
        static_cast<double>(MicrosBetween(last_, now)) / 1'000'000.0;
    tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
    last_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(
    const std::vector<TenantQuota>& quotas) {
  for (const auto& quota : quotas) {
    buckets_.emplace(quota.tenant,
                     TokenBucket(quota.rate_per_sec, quota.burst));
  }
}

Status AdmissionController::Admit(const std::string& tenant, SteadyTime now) {
  // Fail closed: if the admission decision itself faults, refuse the
  // submission rather than letting an unmetered request through.
  EMBER_FAILPOINT("admit/bucket");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) return Status::Ok();
  if (!it->second.TryAcquire(now)) {
    return Status::Unavailable("tenant '" + (tenant.empty() ? "default"
                                                            : tenant) +
                               "' over quota");
  }
  return Status::Ok();
}

void TenantLedger::Record(const std::string& tenant, Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[tenant].counts[static_cast<uint32_t>(event)]++;
}

void TenantLedger::RecordLatency(const std::string& tenant, double micros) {
  LatencyHistogram* histogram = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    histogram = slots_[tenant].total_micros.get();
  }
  // LatencyHistogram is internally lock-free; record outside the map lock.
  histogram->Record(micros);
}

std::vector<TenantCounters> TenantLedger::Snapshot() const {
  std::vector<TenantCounters> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(slots_.size());
  for (const auto& [tenant, slot] : slots_) {
    TenantCounters counters;
    counters.tenant = tenant.empty() ? "default" : tenant;
    counters.submitted = slot.counts[0];
    counters.completed = slot.counts[1];
    counters.expired = slot.counts[2];
    counters.failed = slot.counts[3];
    counters.throttled = slot.counts[4];
    counters.rejected = slot.counts[5];
    counters.deadline_misses = slot.counts[6];
    counters.total_micros = slot.total_micros->Snapshot();
    out.push_back(std::move(counters));
  }
  // std::map iterates sorted, but "" renders as "default" which may not
  // sort where "" did; re-sort by the exported name.
  std::sort(out.begin(), out.end(),
            [](const TenantCounters& a, const TenantCounters& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

}  // namespace ember::serve
