#include "serve/snapshot.h"

#include <utility>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/rng.h"

namespace ember::serve {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'B', 'S', '0', '0', '0', '1'};
constexpr uint32_t kManifestVersion = 1;

void WriteManifest(BinaryWriter& writer, const SnapshotManifest& manifest) {
  writer.WriteU32(kManifestVersion);
  writer.WriteString(manifest.model_code);
  writer.WriteU32(manifest.dim);
  writer.WriteU32(manifest.default_k);
  writer.WriteU32(static_cast<uint32_t>(manifest.kind));
  writer.WriteU64(manifest.rows);
  writer.WriteString(manifest.dataset);
}

bool ReadManifest(BinaryReader& reader, SnapshotManifest& manifest) {
  if (reader.ReadU32() != kManifestVersion) {
    reader.Fail();
    return false;
  }
  manifest.model_code = reader.ReadString();
  manifest.dim = reader.ReadU32();
  manifest.default_k = reader.ReadU32();
  const uint32_t kind = reader.ReadU32();
  manifest.rows = reader.ReadU64();
  manifest.dataset = reader.ReadString();
  if (!reader.ok() || kind > static_cast<uint32_t>(IndexKind::kLsh)) {
    reader.Fail();
    return false;
  }
  manifest.kind = static_cast<IndexKind>(kind);
  return true;
}

}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kExact:
      return "exact";
    case IndexKind::kHnsw:
      return "hnsw";
    case IndexKind::kLsh:
      return "lsh";
  }
  return "unknown";
}

Result<IndexKind> IndexKindFromString(const std::string& text) {
  if (text == "exact") return IndexKind::kExact;
  if (text == "hnsw") return IndexKind::kHnsw;
  if (text == "lsh") return IndexKind::kLsh;
  return Status::InvalidArgument("unknown index kind '" + text + "'");
}

Snapshot Snapshot::Build(SnapshotManifest manifest, la::Matrix corpus,
                         const index::HnswOptions& hnsw_options,
                         const index::LshOptions& lsh_options) {
  Snapshot snapshot;
  manifest.rows = corpus.rows();
  manifest.dim = static_cast<uint32_t>(corpus.cols());
  snapshot.manifest_ = std::move(manifest);
  switch (snapshot.manifest_.kind) {
    case IndexKind::kExact:
      snapshot.exact_.Build(std::move(corpus));
      break;
    case IndexKind::kHnsw:
      snapshot.hnsw_ = index::HnswIndex(hnsw_options);
      snapshot.hnsw_.Build(std::move(corpus));
      break;
    case IndexKind::kLsh:
      snapshot.lsh_ = index::LshIndex(lsh_options);
      snapshot.lsh_.Build(std::move(corpus));
      break;
  }
  return snapshot;
}

Status Snapshot::SaveTo(const std::string& path) const {
  EMBER_FAILPOINT("snapshot/save");
  BinaryWriter writer;
  WriteManifest(writer, manifest_);
  switch (manifest_.kind) {
    case IndexKind::kExact:
      exact_.Save(writer);
      break;
    case IndexKind::kHnsw:
      hnsw_.Save(writer);
      break;
    case IndexKind::kLsh:
      lsh_.Save(writer);
      break;
  }
  return WriteFileAtomic(path, kMagic, writer.buffer());
}

Result<Snapshot> Snapshot::LoadFrom(const std::string& path) {
  EMBER_FAILPOINT("snapshot/load");
  Result<std::string> payload = ReadFileVerified(path, kMagic);
  if (!payload.ok()) return payload.status();
  BinaryReader reader(payload.value());
  Snapshot snapshot;
  if (!ReadManifest(reader, snapshot.manifest_)) {
    return Status::IoError(path + ": corrupt snapshot manifest");
  }
  bool loaded = false;
  size_t rows = 0, cols = 0;
  switch (snapshot.manifest_.kind) {
    case IndexKind::kExact:
      loaded = snapshot.exact_.Load(reader);
      rows = snapshot.exact_.size();
      cols = snapshot.exact_.data().cols();
      break;
    case IndexKind::kHnsw:
      loaded = snapshot.hnsw_.Load(reader);
      rows = snapshot.hnsw_.size();
      cols = snapshot.hnsw_.data().cols();
      break;
    case IndexKind::kLsh:
      loaded = snapshot.lsh_.Load(reader);
      rows = snapshot.lsh_.size();
      cols = snapshot.lsh_.data().cols();
      break;
  }
  // Cross-checking the index against the manifest (and requiring the
  // payload fully consumed) keeps a snapshot whose sections disagree from
  // ever serving.
  if (!loaded || !reader.ok() || reader.remaining() != 0 ||
      rows != snapshot.manifest_.rows ||
      (rows > 0 && cols != snapshot.manifest_.dim)) {
    return Status::IoError(path + ": corrupt snapshot index payload");
  }
  return snapshot;
}

Result<Snapshot> Snapshot::LoadWithRetry(const std::string& path,
                                         const RetryPolicy& policy,
                                         uint64_t* retries) {
  Result<Snapshot> loaded = Status::Internal("snapshot load never attempted");
  RetryStatus(
      policy, HashBytes(path.data(), path.size()),
      [&] {
        loaded = LoadFrom(path);
        return loaded.status();
      },
      retries);
  return loaded;
}

const la::Matrix& Snapshot::data() const {
  switch (manifest_.kind) {
    case IndexKind::kHnsw:
      return hnsw_.data();
    case IndexKind::kLsh:
      return lsh_.data();
    case IndexKind::kExact:
      break;
  }
  return exact_.data();
}

Status Snapshot::Validate() const {
  EMBER_FAILPOINT("snapshot/validate");
  const la::Matrix& corpus = data();
  if (corpus.rows() != manifest_.rows) {
    return Status::Internal("snapshot validation: index holds " +
                            std::to_string(corpus.rows()) +
                            " rows but the manifest claims " +
                            std::to_string(manifest_.rows));
  }
  if (manifest_.rows > 0 && corpus.cols() != manifest_.dim) {
    return Status::Internal("snapshot validation: index dim " +
                            std::to_string(corpus.cols()) +
                            " != manifest dim " +
                            std::to_string(manifest_.dim));
  }
  if (manifest_.kind == IndexKind::kHnsw && !hnsw_.ValidateGraph()) {
    return Status::Internal("snapshot validation: HNSW graph invariants"
                            " violated");
  }
  return Status::Ok();
}

std::vector<std::vector<index::Neighbor>> Snapshot::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  switch (manifest_.kind) {
    case IndexKind::kHnsw:
      return hnsw_.QueryBatch(queries, k);
    case IndexKind::kLsh:
      return lsh_.QueryBatch(queries, k);
    case IndexKind::kExact:
      break;
  }
  return exact_.QueryBatch(queries, k);
}

std::vector<std::vector<index::Neighbor>> Snapshot::FallbackQueryBatch(
    const la::Matrix& queries, size_t k) const {
  return index::BruteForceTopK(data(), queries, k);
}

}  // namespace ember::serve
