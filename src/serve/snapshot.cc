#include "serve/snapshot.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "serve/snapshot_internal.h"

namespace ember::serve {

namespace internal {

namespace {
// v2 added the shard-plan fields (shard_id/shard_count/row_offset); v3
// added the mutation-log position (mutation_seq). The reader is strict:
// older files fail closed instead of silently loading with guessed fields —
// rebuild the snapshot (they are derived artifacts).
constexpr uint32_t kManifestVersion = 3;
}  // namespace

void WriteManifest(BinaryWriter& writer, const SnapshotManifest& manifest) {
  writer.WriteU32(kManifestVersion);
  writer.WriteString(manifest.model_code);
  writer.WriteU32(manifest.dim);
  writer.WriteU32(manifest.default_k);
  writer.WriteU32(static_cast<uint32_t>(manifest.kind));
  writer.WriteU64(manifest.rows);
  writer.WriteString(manifest.dataset);
  writer.WriteU32(manifest.shard_id);
  writer.WriteU32(manifest.shard_count);
  writer.WriteU64(manifest.row_offset);
  writer.WriteU64(manifest.mutation_seq);
}

bool ReadManifest(BinaryReader& reader, SnapshotManifest& manifest) {
  if (reader.ReadU32() != kManifestVersion) {
    reader.Fail();
    return false;
  }
  manifest.model_code = reader.ReadString();
  manifest.dim = reader.ReadU32();
  manifest.default_k = reader.ReadU32();
  const uint32_t kind = reader.ReadU32();
  manifest.rows = reader.ReadU64();
  manifest.dataset = reader.ReadString();
  manifest.shard_id = reader.ReadU32();
  manifest.shard_count = reader.ReadU32();
  manifest.row_offset = reader.ReadU64();
  manifest.mutation_seq = reader.ReadU64();
  if (!reader.ok() || kind > static_cast<uint32_t>(IndexKind::kLsh)) {
    reader.Fail();
    return false;
  }
  // Shard-plan coherence is part of the format: only the round-robin plan
  // exists, under which row_offset is exactly the shard id.
  if (manifest.shard_count == 0 ||
      manifest.shard_id >= manifest.shard_count ||
      manifest.row_offset != manifest.shard_id) {
    reader.Fail();
    return false;
  }
  manifest.kind = static_cast<IndexKind>(kind);
  return true;
}

}  // namespace internal

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kExact:
      return "exact";
    case IndexKind::kHnsw:
      return "hnsw";
    case IndexKind::kLsh:
      return "lsh";
  }
  return "unknown";
}

Result<IndexKind> IndexKindFromString(const std::string& text) {
  if (text == "exact") return IndexKind::kExact;
  if (text == "hnsw") return IndexKind::kHnsw;
  if (text == "lsh") return IndexKind::kLsh;
  return Status::InvalidArgument("unknown index kind '" + text + "'");
}

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kFloat32:
      return "f32";
    case StorageKind::kInt8:
      return "int8";
  }
  return "unknown";
}

Result<StorageKind> StorageKindFromString(const std::string& text) {
  if (text == "f32") return StorageKind::kFloat32;
  if (text == "int8") return StorageKind::kInt8;
  return Status::InvalidArgument("unknown storage kind '" + text + "'");
}

Snapshot Snapshot::Build(SnapshotManifest manifest, la::Matrix corpus,
                         const index::HnswOptions& hnsw_options,
                         const index::LshOptions& lsh_options) {
  EMBER_CHECK(manifest.storage == StorageKind::kFloat32 ||
              manifest.kind == IndexKind::kExact);
  Snapshot snapshot;
  manifest.rows = corpus.rows();
  manifest.dim = static_cast<uint32_t>(corpus.cols());
  snapshot.manifest_ = std::move(manifest);
  switch (snapshot.manifest_.kind) {
    case IndexKind::kExact:
      snapshot.exact_.Build(std::move(corpus));
      if (snapshot.manifest_.storage == StorageKind::kInt8) {
        snapshot.exact_.Quantize();
      }
      break;
    case IndexKind::kHnsw:
      snapshot.hnsw_ = index::HnswIndex(hnsw_options);
      snapshot.hnsw_.Build(std::move(corpus));
      break;
    case IndexKind::kLsh:
      snapshot.lsh_ = index::LshIndex(lsh_options);
      snapshot.lsh_.Build(std::move(corpus));
      break;
  }
  return snapshot;
}

Status Snapshot::Quantize() {
  if (manifest_.kind != IndexKind::kExact) {
    return Status::InvalidArgument(
        std::string("int8 storage requires an exact snapshot, not ") +
        IndexKindName(manifest_.kind));
  }
  exact_.Quantize();
  manifest_.storage = StorageKind::kInt8;
  return Status::Ok();
}

Status Snapshot::SaveTo(const std::string& path,
                        SnapshotFormat format) const {
  EMBER_FAILPOINT("snapshot/save");
  if (format == SnapshotFormat::kV2) return SaveToV2(path);
  if (manifest_.storage != StorageKind::kFloat32) {
    return Status::InvalidArgument(
        "the EMBS0001 format cannot carry int8 storage; save as EMBS0002");
  }
  BinaryWriter writer;
  internal::WriteManifest(writer, manifest_);
  switch (manifest_.kind) {
    case IndexKind::kExact:
      exact_.Save(writer);
      break;
    case IndexKind::kHnsw:
      hnsw_.Save(writer);
      break;
    case IndexKind::kLsh:
      lsh_.Save(writer);
      break;
  }
  return WriteFileAtomic(path, internal::kMagicV1, writer.buffer());
}

Result<Snapshot> Snapshot::LoadFrom(const std::string& path) {
  return LoadFrom(path, LoadOptions{});
}

Result<Snapshot> Snapshot::LoadFrom(const std::string& path,
                                    const LoadOptions& options) {
  EMBER_FAILPOINT("snapshot/load");
  const auto start = std::chrono::steady_clock::now();
  Result<Snapshot> loaded = [&]() -> Result<Snapshot> {
    Result<MmapFile> file = MmapFile::Open(path);
    if (!file.ok()) return file.status();
    if (file.value().size() >= sizeof(internal::kMagicV2) &&
        std::memcmp(file.value().data(), internal::kMagicV2,
                    sizeof(internal::kMagicV2)) == 0) {
      return LoadFromV2(path, options, std::move(file.value()));
    }
    // Anything that is not EMBS0002 goes down the v1 path, which re-reads
    // the file and produces the precise magic/truncation diagnostics.
    Snapshot snapshot;
    const Status v1 = LoadV1Into(path, snapshot);
    if (!v1.ok()) return v1;
    return snapshot;
  }();
  if (!loaded.ok()) return loaded;
  loaded.value().load_micros_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return loaded;
}

Status Snapshot::LoadV1Into(const std::string& path, Snapshot& snapshot) {
  Result<std::string> payload = ReadFileVerified(path, internal::kMagicV1);
  if (!payload.ok()) return payload.status();
  BinaryReader reader(payload.value());
  SnapshotManifest manifest;
  if (!internal::ReadManifest(reader, manifest)) {
    return Status::IoError(path + ": corrupt snapshot manifest");
  }
  Snapshot loaded;
  loaded.manifest_ = std::move(manifest);
  bool ok = false;
  size_t rows = 0, cols = 0;
  switch (loaded.manifest_.kind) {
    case IndexKind::kExact:
      ok = loaded.exact_.Load(reader);
      rows = loaded.exact_.size();
      cols = loaded.exact_.data().cols();
      break;
    case IndexKind::kHnsw:
      ok = loaded.hnsw_.Load(reader);
      rows = loaded.hnsw_.size();
      cols = loaded.hnsw_.data().cols();
      break;
    case IndexKind::kLsh:
      ok = loaded.lsh_.Load(reader);
      rows = loaded.lsh_.size();
      cols = loaded.lsh_.data().cols();
      break;
  }
  // Cross-checking the index against the manifest (and requiring the
  // payload fully consumed) keeps a snapshot whose sections disagree from
  // ever serving.
  if (!ok || !reader.ok() || reader.remaining() != 0 ||
      rows != loaded.manifest_.rows ||
      (rows > 0 && cols != loaded.manifest_.dim)) {
    return Status::IoError(path + ": corrupt snapshot index payload");
  }
  snapshot = std::move(loaded);
  return Status::Ok();
}

Result<Snapshot> Snapshot::LoadWithRetry(const std::string& path,
                                         const RetryPolicy& policy,
                                         uint64_t* retries) {
  return LoadWithRetry(path, policy, LoadOptions{}, retries);
}

Result<Snapshot> Snapshot::LoadWithRetry(const std::string& path,
                                         const RetryPolicy& policy,
                                         const LoadOptions& load_options,
                                         uint64_t* retries) {
  Result<Snapshot> loaded = Status::Internal("snapshot load never attempted");
  RetryStatus(
      policy, HashBytes(path.data(), path.size()),
      [&] {
        loaded = LoadFrom(path, load_options);
        return loaded.status();
      },
      retries);
  return loaded;
}

Result<Snapshot> Snapshot::AdoptHnsw(SnapshotManifest manifest,
                                     index::HnswIndex hnsw) {
  if (!hnsw.ValidateGraph()) {
    return Status::Internal(
        "AdoptHnsw: graph invariants violated; refusing to serve it");
  }
  Snapshot snapshot;
  manifest.kind = IndexKind::kHnsw;
  manifest.storage = StorageKind::kFloat32;
  manifest.rows = hnsw.size();
  manifest.dim = static_cast<uint32_t>(hnsw.data().cols());
  snapshot.manifest_ = std::move(manifest);
  snapshot.hnsw_ = std::move(hnsw);
  return snapshot;
}

Result<index::HnswIndex> Snapshot::ThawedHnsw() const {
  if (manifest_.kind != IndexKind::kHnsw) {
    return Status::InvalidArgument(
        std::string("ThawedHnsw on a ") + IndexKindName(manifest_.kind) +
        " snapshot");
  }
  index::HnswIndex copy = hnsw_;
  // Thaw while `this` (and its mmap, if any) is alive: afterwards the copy
  // owns every byte it reads.
  copy.Thaw();
  return copy;
}

const la::Matrix& Snapshot::data() const {
  switch (manifest_.kind) {
    case IndexKind::kHnsw:
      return hnsw_.data();
    case IndexKind::kLsh:
      return lsh_.data();
    case IndexKind::kExact:
      break;
  }
  return exact_.data();
}

Status Snapshot::Validate() const {
  EMBER_FAILPOINT("snapshot/validate");
  const la::Matrix& corpus = data();
  if (corpus.rows() != manifest_.rows) {
    return Status::Internal("snapshot validation: index holds " +
                            std::to_string(corpus.rows()) +
                            " rows but the manifest claims " +
                            std::to_string(manifest_.rows));
  }
  if (manifest_.rows > 0 && corpus.cols() != manifest_.dim) {
    return Status::Internal("snapshot validation: index dim " +
                            std::to_string(corpus.cols()) +
                            " != manifest dim " +
                            std::to_string(manifest_.dim));
  }
  if (manifest_.shard_count == 0 ||
      manifest_.shard_id >= manifest_.shard_count ||
      manifest_.row_offset != manifest_.shard_id) {
    return Status::Internal(
        "snapshot validation: incoherent shard plan (shard " +
        std::to_string(manifest_.shard_id) + " of " +
        std::to_string(manifest_.shard_count) + ", row_offset " +
        std::to_string(manifest_.row_offset) + ")");
  }
  if (manifest_.kind == IndexKind::kHnsw && !hnsw_.ValidateGraph()) {
    return Status::Internal("snapshot validation: HNSW graph invariants"
                            " violated");
  }
  const bool want_i8 = manifest_.storage == StorageKind::kInt8;
  if (want_i8 && manifest_.kind != IndexKind::kExact) {
    return Status::Internal("snapshot validation: int8 storage on a "
                            "non-exact index");
  }
  if (manifest_.kind == IndexKind::kExact && exact_.quantized() != want_i8) {
    return Status::Internal(
        std::string("snapshot validation: manifest claims ") +
        StorageKindName(manifest_.storage) + " storage but the index " +
        (exact_.quantized() ? "has" : "lacks") + " a quantized tier");
  }
  return Status::Ok();
}

std::vector<std::vector<index::Neighbor>> Snapshot::QueryBatch(
    const la::Matrix& queries, size_t k) const {
  switch (manifest_.kind) {
    case IndexKind::kHnsw:
      return hnsw_.QueryBatch(queries, k);
    case IndexKind::kLsh:
      return lsh_.QueryBatch(queries, k);
    case IndexKind::kExact:
      break;
  }
  return exact_.QueryBatch(queries, k);
}

std::vector<std::vector<index::Neighbor>> Snapshot::FallbackQueryBatch(
    const la::Matrix& queries, size_t k) const {
  return index::BruteForceTopK(data(), queries, k);
}

}  // namespace ember::serve
