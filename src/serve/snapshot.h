#ifndef EMBER_SERVE_SNAPSHOT_H_
#define EMBER_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "index/exact_index.h"
#include "index/hnsw_index.h"
#include "index/lsh_index.h"
#include "index/neighbor.h"
#include "la/matrix.h"

namespace ember::serve {

/// Which NNS index a snapshot carries (Section 4.2's blocking back ends).
enum class IndexKind : uint32_t { kExact = 0, kHnsw = 1, kLsh = 2 };

const char* IndexKindName(IndexKind kind);
Result<IndexKind> IndexKindFromString(const std::string& text);

/// Provenance and defaults bundled with the serialized index. The engine
/// refuses to serve a snapshot with a model/dim that does not match its
/// query-side embedding model, so a stale snapshot fails loudly at startup
/// instead of silently returning garbage neighbors.
struct SnapshotManifest {
  std::string model_code;  // embedding model that produced the vectors
  uint32_t dim = 0;        // embedding dimensionality
  uint32_t default_k = 10; // per-query neighbor count the service defaults to
  IndexKind kind = IndexKind::kExact;
  uint64_t rows = 0;       // corpus size
  std::string dataset;     // free-form provenance tag (e.g. "D2@0.25")
};

/// A built blocking pipeline frozen into one loadable unit: the manifest
/// plus exactly one index, which owns the corpus embedding matrix. Stored
/// in the checksummed "EMBS0001" container (common/binary_io.h), written
/// atomically — LoadFrom fails closed on truncation or bit flips and a
/// loaded snapshot answers QueryBatch bit-identically to the freshly built
/// pipeline it was saved from.
class Snapshot {
 public:
  Snapshot() = default;

  /// Builds the index named by `manifest.kind` over `corpus` (pass the
  /// matrix by value and move it in to avoid doubling peak memory).
  /// `manifest.rows` and `manifest.dim` are overwritten from the corpus.
  static Snapshot Build(SnapshotManifest manifest, la::Matrix corpus,
                        const index::HnswOptions& hnsw_options = {},
                        const index::LshOptions& lsh_options = {});

  Status SaveTo(const std::string& path) const;

  static Result<Snapshot> LoadFrom(const std::string& path);

  /// LoadFrom under a retry policy: transient load failures (I/O blips,
  /// injected faults) back off and retry; corrupt-payload failures are
  /// still surfaced after the attempt budget. `retries`, when non-null,
  /// receives the number of retries actually taken.
  static Result<Snapshot> LoadWithRetry(const std::string& path,
                                        const RetryPolicy& policy,
                                        uint64_t* retries = nullptr);

  const SnapshotManifest& manifest() const { return manifest_; }
  size_t size() const { return manifest_.rows; }

  /// The corpus matrix owned by whichever index is active (the degraded
  /// serving path brute-force scans it directly).
  const la::Matrix& data() const;

  /// Re-validates the loaded snapshot: manifest vs index row/dim agreement
  /// plus the HNSW graph invariants (entry point and link targets in
  /// bounds). Load() enforces all of this already; the serving engine runs
  /// it again before trusting a hot-reloaded snapshot, and the
  /// "snapshot/validate" failpoint injects failures here.
  Status Validate() const;

  /// Top-k against whichever index the snapshot carries. Thread-safe.
  std::vector<std::vector<index::Neighbor>> QueryBatch(
      const la::Matrix& queries, size_t k) const;

  /// Degraded-mode top-k: an exact brute-force scan over data(), bypassing
  /// the index structure entirely — the answer of last resort when the
  /// primary index is suspect. For kExact snapshots this is bit-identical
  /// to QueryBatch; for kHnsw/kLsh it returns the true exact neighbors
  /// (a recall upgrade at a latency cost). Thread-safe.
  std::vector<std::vector<index::Neighbor>> FallbackQueryBatch(
      const la::Matrix& queries, size_t k) const;

 private:
  SnapshotManifest manifest_;
  // Exactly one is populated, per manifest_.kind.
  index::ExactIndex exact_;
  index::HnswIndex hnsw_;
  index::LshIndex lsh_;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_SNAPSHOT_H_
