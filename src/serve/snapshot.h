#ifndef EMBER_SERVE_SNAPSHOT_H_
#define EMBER_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mmap_file.h"
#include "common/retry.h"
#include "common/status.h"
#include "index/exact_index.h"
#include "index/hnsw_index.h"
#include "index/lsh_index.h"
#include "index/neighbor.h"
#include "la/matrix.h"

namespace ember::serve {

/// Which NNS index a snapshot carries (Section 4.2's blocking back ends).
enum class IndexKind : uint32_t { kExact = 0, kHnsw = 1, kLsh = 2 };

const char* IndexKindName(IndexKind kind);
Result<IndexKind> IndexKindFromString(const std::string& text);

/// How the corpus vectors are stored for scanning. kInt8 keeps the float
/// rows too (rescoring needs them), but the scan tier reads only the 4x
/// smaller int8 codes — under mmap the float pages are simply never
/// touched until a rescore asks for them.
enum class StorageKind : uint32_t { kFloat32 = 0, kInt8 = 1 };

const char* StorageKindName(StorageKind kind);
Result<StorageKind> StorageKindFromString(const std::string& text);

/// On-disk container revisions. kV1 is the original EMBS0001 heap-load
/// format (kept bit-identical as the compatibility oracle); kV2 is the
/// EMBS0002 layout with 64-byte-aligned sections that LoadFrom maps into
/// place instead of deserializing.
enum class SnapshotFormat : uint32_t { kV1 = 1, kV2 = 2 };

/// Knobs for LoadFrom. The default is maximally paranoid.
struct LoadOptions {
  /// Verify the full-payload FNV-1a checksum on open (fail-closed against
  /// bit flips, same guarantee as EMBS0001). Turning it off skips the only
  /// O(file-size) pass in the EMBS0002 load path — that is the O(1)
  /// cold-start mode for files this process just wrote or already
  /// verified. Header checksum, file-length and section bounds checks
  /// always run regardless.
  bool verify_checksum = true;
};

/// Provenance and defaults bundled with the serialized index. The engine
/// refuses to serve a snapshot with a model/dim that does not match its
/// query-side embedding model, so a stale snapshot fails loudly at startup
/// instead of silently returning garbage neighbors.
struct SnapshotManifest {
  std::string model_code;  // embedding model that produced the vectors
  uint32_t dim = 0;        // embedding dimensionality
  uint32_t default_k = 10; // per-query neighbor count the service defaults to
  IndexKind kind = IndexKind::kExact;
  uint64_t rows = 0;       // corpus size
  std::string dataset;     // free-form provenance tag (e.g. "D2@0.25")
  /// Scan-tier storage. Only EMBS0002 can carry kInt8 (and only for
  /// kExact); EMBS0001 snapshots are always kFloat32.
  StorageKind storage = StorageKind::kFloat32;
  /// Shard plan (DESIGN.md §13). An unsharded snapshot is the degenerate
  /// 1-shard plan (shard_id 0, shard_count 1, row_offset 0). Shard s of N
  /// under the round-robin partitioner (core/sharding.h) holds the global
  /// rows {s, s+N, s+2N, ...}, so row_offset == shard_id and a local row j
  /// maps back to global id `row_offset + j * shard_count`. The Router
  /// refuses shard sets whose manifests disagree on the plan.
  uint32_t shard_id = 0;
  uint32_t shard_count = 1;
  uint64_t row_offset = 0;
  /// Mutation-log position this snapshot covers (DESIGN.md §15): the group
  /// sequence number of the last mutation folded in. A compacted snapshot
  /// shipped for replica resync carries it so the receiver knows exactly
  /// where log replay must resume; 0 for bases built offline.
  uint64_t mutation_seq = 0;
};

/// A built blocking pipeline frozen into one loadable unit: the manifest
/// plus exactly one index, which owns (or, when mmap'ed, views) the corpus
/// embedding matrix. Two checksummed containers exist: the legacy
/// "EMBS0001" stream (heap deserialization) and the section-aligned
/// "EMBS0002" layout that LoadFrom maps read-only and serves in place —
/// no copy, lazy page-in, and N processes share one physical copy of the
/// corpus. Both are written atomically; LoadFrom sniffs the magic, fails
/// closed on truncation or bit flips in either format, and a loaded
/// snapshot answers QueryBatch bit-identically to the freshly built
/// pipeline it was saved from (for float storage; int8 storage rescores to
/// recall@10 >= 0.99 of the float oracle).
class Snapshot {
 public:
  Snapshot() = default;

  /// Builds the index named by `manifest.kind` over `corpus` (pass the
  /// matrix by value and move it in to avoid doubling peak memory).
  /// `manifest.rows` and `manifest.dim` are overwritten from the corpus.
  static Snapshot Build(SnapshotManifest manifest, la::Matrix corpus,
                        const index::HnswOptions& hnsw_options = {},
                        const index::LshOptions& lsh_options = {});

  /// Builds the int8 scan tier (kExact snapshots only) and flips the
  /// manifest to StorageKind::kInt8; SaveTo then persists both tiers.
  Status Quantize();

  /// Writes the EMBS0002 container by default; pass kV1 for the legacy
  /// stream (valid only for float storage — the v1 format cannot carry the
  /// int8 tier).
  Status SaveTo(const std::string& path,
                SnapshotFormat format = SnapshotFormat::kV2) const;

  static Result<Snapshot> LoadFrom(const std::string& path);
  static Result<Snapshot> LoadFrom(const std::string& path,
                                   const LoadOptions& options);

  /// LoadFrom under a retry policy: transient load failures (I/O blips,
  /// injected faults) back off and retry; corrupt-payload failures are
  /// still surfaced after the attempt budget. `retries`, when non-null,
  /// receives the number of retries actually taken.
  static Result<Snapshot> LoadWithRetry(const std::string& path,
                                        const RetryPolicy& policy,
                                        uint64_t* retries = nullptr);

  /// Same, with explicit LoadOptions. Swap boundaries (hot reload,
  /// compaction commit) always pass the paranoid default here — trusted
  /// mode is a cold-start optimization for files a process just verified,
  /// never for bytes about to replace a serving corpus (DESIGN.md §14).
  static Result<Snapshot> LoadWithRetry(const std::string& path,
                                        const RetryPolicy& policy,
                                        const LoadOptions& load_options,
                                        uint64_t* retries);

  /// Wraps an online-built HNSW graph (Thaw + AddBatch) as a serving
  /// snapshot — the delta-absorption publish path of the streaming tier.
  /// rows/dim are overwritten from the index; fails closed when the graph
  /// invariants do not hold.
  static Result<Snapshot> AdoptHnsw(SnapshotManifest manifest,
                                    index::HnswIndex hnsw);

  /// kHnsw only: a deep, mutable (thawed) copy of the graph, safe to
  /// AddBatch into while this snapshot keeps serving the frozen original.
  Result<index::HnswIndex> ThawedHnsw() const;

  const SnapshotManifest& manifest() const { return manifest_; }
  size_t size() const { return manifest_.rows; }

  /// Build parameters of the carried HNSW graph (meaningful for kHnsw
  /// snapshots; compaction reuses them when rebuilding a merged base).
  const index::HnswOptions& hnsw_options() const { return hnsw_.options(); }

  /// Build parameters of the carried LSH tables (meaningful for kLsh
  /// snapshots). The hyperplanes are derived deterministically from the
  /// seed, so rebuilding with these options reproduces the index exactly —
  /// what lets compaction and resync rebuild LSH bases faithfully.
  const index::LshOptions& lsh_options() const { return lsh_.options(); }

  /// Wall-clock cost of the last LoadFrom that produced this snapshot
  /// (microseconds), and the bytes mmap'ed by it (0 for heap-loaded
  /// EMBS0001 snapshots). Exported by the engine as
  /// ember_serve_snapshot_load_micros / ember_serve_snapshot_bytes_mapped.
  uint64_t load_micros() const { return load_micros_; }
  uint64_t bytes_mapped() const { return bytes_mapped_; }

  /// The corpus matrix owned by whichever index is active (the degraded
  /// serving path brute-force scans it directly).
  const la::Matrix& data() const;

  /// Re-validates the loaded snapshot: manifest vs index row/dim agreement
  /// plus the HNSW graph invariants (entry point and link targets in
  /// bounds). Load() enforces all of this already; the serving engine runs
  /// it again before trusting a hot-reloaded snapshot, and the
  /// "snapshot/validate" failpoint injects failures here.
  Status Validate() const;

  /// Top-k against whichever index the snapshot carries. Thread-safe.
  std::vector<std::vector<index::Neighbor>> QueryBatch(
      const la::Matrix& queries, size_t k) const;

  /// Degraded-mode top-k: an exact brute-force scan over data(), bypassing
  /// the index structure entirely — the answer of last resort when the
  /// primary index is suspect. For kExact snapshots this is bit-identical
  /// to QueryBatch; for kHnsw/kLsh it returns the true exact neighbors
  /// (a recall upgrade at a latency cost). Thread-safe.
  std::vector<std::vector<index::Neighbor>> FallbackQueryBatch(
      const la::Matrix& queries, size_t k) const;

 private:
  /// EMBS0002 writer/loader, defined in snapshot_v2.cc. The loader takes
  /// ownership of the mapping and builds every index view in place.
  Status SaveToV2(const std::string& path) const;
  static Result<Snapshot> LoadFromV2(const std::string& path,
                                     const LoadOptions& options,
                                     MmapFile file);
  /// The EMBS0001 heap-deserialization path (the compatibility oracle the
  /// mmap loader is tested against). `snapshot` must be default-ctored.
  static Status LoadV1Into(const std::string& path, Snapshot& snapshot);

  SnapshotManifest manifest_;
  // Exactly one is populated, per manifest_.kind.
  index::ExactIndex exact_;
  index::HnswIndex hnsw_;
  index::LshIndex lsh_;
  /// Backing mapping when loaded from EMBS0002: the indexes hold raw views
  /// into it, so it is shared (Snapshot stays copyable; the last copy
  /// munmaps). Null for built or EMBS0001-loaded snapshots.
  std::shared_ptr<MmapFile> mapping_;
  uint64_t load_micros_ = 0;
  uint64_t bytes_mapped_ = 0;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_SNAPSHOT_H_
