#ifndef EMBER_SERVE_ROUTER_H_
#define EMBER_SERVE_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/timer.h"
#include "embed/embedding_model.h"
#include "index/neighbor.h"
#include "la/matrix.h"
#include "recover/mutation_log.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace ember::serve {

/// K-way merge of per-shard top-k lists, each already sorted by CloserThan
/// (ascending distance, ties by ascending id). Returns the global top-k.
/// Deterministic and exact: CloserThan is a total order once ids are
/// globally unique, and a round-robin shard set partitions the corpus, so
/// the merged list is bit-identical to the unsharded scan's — every
/// (id, distance) pair is computed by the same scalar-order dot product
/// regardless of which shard holds the row (DESIGN.md §13).
std::vector<index::Neighbor> MergeTopK(
    const std::vector<std::vector<index::Neighbor>>& per_shard, size_t k);

/// Builds N shard snapshots from one corpus under the round-robin plan:
/// shard s gets global rows {s, s+N, ...}, its manifest gains
/// shard_id=s/shard_count=N/row_offset=s, and rows/dim are overwritten from
/// its partition (storage/kind/index options apply per shard).
Result<std::vector<Snapshot>> BuildShardSnapshots(
    SnapshotManifest base, const la::Matrix& corpus, uint32_t shard_count,
    const index::HnswOptions& hnsw_options = {},
    const index::LshOptions& lsh_options = {});

/// Loads a shard set fail-closed: every file must load cleanly, declare the
/// same shard_count (== the number of paths), agree on the model
/// fingerprint (model_code + dim), index kind, storage and default_k, and
/// the shard_ids must cover 0..N-1 exactly once (duplicates refused).
/// Returns the snapshots sorted by shard_id.
Result<std::vector<Snapshot>> LoadShardSet(
    const std::vector<std::string>& paths, const LoadOptions& options = {});

struct RouterOptions {
  /// Per-query neighbor count; 0 uses the shard manifests' default_k.
  size_t k = 0;
  /// Router admission queue bound (same backpressure contract as Engine).
  size_t max_queue = 1024;
  /// Router-side batching window: one drained batch embeds once and fans
  /// out together.
  size_t max_batch = 32;
  int64_t max_wait_micros = 2000;
  /// Router batcher threads (each embeds + scatters + merges whole batches).
  size_t workers = 1;
  /// Retry policy around the router's embed-once stage.
  RetryPolicy embed_retry;
  /// When a whole shard group is down, complete requests from the surviving
  /// shards with RouterReply.partial=true instead of failing them. OFF
  /// fails such requests with Unavailable.
  bool allow_partial = true;
  /// Recovery worker cadence (DESIGN.md §15): every tick it quarantines
  /// tripped replicas, cross-checks replica digests (anti-entropy), and
  /// replays or resyncs quarantined replicas back to kActive. 0 disables
  /// the worker (replicas then stay quarantined until healed externally).
  int64_t recover_tick_micros = 10'000;
  /// Per-shard-group mutation log ring capacity. A replica that falls more
  /// than this many mutations behind can no longer catch up by replay and
  /// takes the snapshot-resync path instead.
  size_t log_capacity = 4096;
  /// Directory for resync snapshot hand-off files; empty uses the system
  /// temp directory.
  std::string recovery_dir;
  /// Queue drain order (DESIGN.md §16): kEdf drains the most urgent queued
  /// request first; deadline-free traffic behaves exactly like kFifo.
  QueuePolicy queue_policy = QueuePolicy::kEdf;
  /// Per-tenant admission quotas at the router's Submit; empty disables
  /// the token bucket gate.
  std::vector<TenantQuota> quotas;
};

/// Router-side replica lifecycle (DESIGN.md §15). Only kActive replicas
/// receive query or mutation traffic and count toward group liveness:
///   kActive      — in rotation, applying the mutation stream
///   kQuarantined — out of rotation, awaiting recovery (missed a mutation,
///                  failed the digest probe, tripped its breaker, or was
///                  readmitted after an admin kill)
///   kCatchingUp  — the recovery worker is replaying/resyncing it now
///   kKilled      — administratively down (KillReplica); recovery ignores
///                  it until RejoinReplica readmits it as kQuarantined
enum class ReplicaState : uint32_t {
  kActive = 0,
  kQuarantined = 1,
  kCatchingUp = 2,
  kKilled = 3,
};

const char* ReplicaStateName(ReplicaState state);

/// A merged scatter-gather answer. `partial` is true when at least one
/// shard group contributed nothing (every replica down) and the router was
/// configured to degrade rather than fail.
struct RouterReply {
  std::vector<index::Neighbor> neighbors;
  bool partial = false;
};

/// Monotone counters + latency histograms for the router, readable at any
/// time. Counter identity: submitted == completed + expired + failed +
/// still-in-flight. `shard_micros[s][r]` observes per-replica round trips
/// as seen from the router's gather loop (fan-out start to that replica's
/// future resolving).
struct RouterMetrics {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;       // refused at Submit (queue full / stopped)
  uint64_t throttled = 0;      // refused at Submit by the token bucket
  uint64_t expired = 0;        // shed before embedding
  uint64_t failed = 0;         // futures failed with an error
  uint64_t deadline_misses = 0;
  uint64_t batches = 0;
  uint64_t retries = 0;          // embed attempts beyond each batch's first
  uint64_t partial = 0;          // replies completed with a missing shard
  uint64_t shards_degraded = 0;  // (request, shard group) pairs unanswered
  uint64_t sibling_retries = 0;  // replica fail-overs (submit or gather)
  uint64_t upserts = 0;              // rows admitted to an owning shard
  uint64_t deletes = 0;              // tombstones routed to an owning shard
  uint64_t mutation_failures = 0;    // mutations refused fail-closed
  uint64_t mutation_divergence = 0;  // replicas disagreed on a mutation

  // Recovery counters (PR 9, DESIGN.md §15).
  uint64_t quarantines = 0;         // replicas pulled from rotation
  uint64_t catchups = 0;            // replicas healed by log replay
  uint64_t resyncs = 0;             // replicas healed by snapshot resync
  uint64_t replayed_mutations = 0;  // log records re-applied during catch-up
  uint64_t digest_mismatches = 0;   // anti-entropy probes that found a liar

  HistogramSnapshot queue_micros;   // submit -> drained from the queue
  HistogramSnapshot embed_micros;   // per batch: embed-once
  HistogramSnapshot fanout_micros;  // per batch: scatter submits
  HistogramSnapshot gather_micros;  // per batch: waiting on shard futures
  HistogramSnapshot merge_micros;   // per batch: k-way merges + completion
  HistogramSnapshot total_micros;   // submit -> future completed
  HistogramSnapshot batch_size;     // live requests per processed batch
  std::vector<std::vector<HistogramSnapshot>> shard_micros;  // [shard][rep]
  /// Per-replica recovery gauges: the last group mutation seq each replica
  /// has applied, and its lifecycle state. [shard][replica].
  std::vector<std::vector<uint64_t>> last_applied_seq;
  std::vector<std::vector<ReplicaState>> replica_states;
  /// Per-tenant breakdown (PR 10), sorted by tenant name.
  std::vector<TenantCounters> tenants;
};

/// Scatter-gather front end over sharded Engines (DESIGN.md §13): producers
/// Submit() records; a router worker drains a micro-batch, embeds it ONCE,
/// fans each embedding to one replica of every shard group via
/// Engine::SubmitEmbedded, gathers the per-shard top-k, remaps local ids to
/// global space and k-way heap-merges them with the CloserThan tie-break —
/// so exact shard sets answer bit-identically to one unsharded engine.
///
/// Replicas and health (the PR4 signals, per replica): each shard group
/// holds R interchangeable engines. The router rotates across them,
/// preferring replicas whose health() is not kTripped; a refused or failed
/// replica fails over to its siblings (sibling_retries). Every 16th pick
/// per group ignores health so an open breaker keeps receiving the probe
/// traffic its half-open recovery needs. Only when NO replica of a group
/// answers does the reply degrade: partial=true + shards_degraded, or an
/// Unavailable failure when allow_partial is off.
///
/// In-process today, ownership-clean for a process boundary later: the
/// router owns its engines, talks to them only through Submit*/health()/
/// Metrics(), and never touches their snapshots beyond the manifest.
class Router {
 public:
  /// Takes ownership of the engines (any order; replicas of shard s are the
  /// engines whose snapshot manifest has shard_id == s) and shares the
  /// embed-once model. Fails closed on an incoherent fleet: mismatched
  /// shard_count or model fingerprint, a shard group with no replicas,
  /// replicas disagreeing on rows/kind/storage, a model that does not match
  /// the manifests, or per-shard row counts that contradict the round-robin
  /// plan. Workers start immediately on success.
  static Result<std::unique_ptr<Router>> Create(
      std::vector<std::unique_ptr<Engine>> engines,
      std::shared_ptr<embed::EmbeddingModel> model,
      const RouterOptions& options);

  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Non-blocking submit of one record; Unavailable on a full queue or
  /// stopped router (backpressure, never blocking).
  Result<std::future<Result<RouterReply>>> Submit(
      std::string record, SteadyTime deadline = kNoDeadline);

  /// Tenant-aware submit (DESIGN.md §16): same admission rules plus the
  /// per-tenant token bucket — an over-quota tenant gets Unavailable
  /// immediately without enqueueing, counted as throttled.
  Result<std::future<Result<RouterReply>>> Submit(std::string record,
                                                  const SubmitOptions& opts);

  /// Routes one upsert to its owning shard group (round-robin mutation
  /// ticket) and applies it on EVERY replica of that group, serialized per
  /// group so all replicas assign the same local id. Returns the global id
  /// (shard + local * shard_count — the inverse of the query-path remap).
  /// Synchronous (blocks on the replica futures) and fail-closed: when no
  /// replica of the owning group accepts — the group is fully down — the
  /// mutation is refused with Unavailable and nothing was admitted
  /// anywhere. Requires live engines (EngineOptions.live).
  Result<uint64_t> Upsert(const std::string& record);

  /// Routes a delete to the shard that owns `global_id` under the
  /// round-robin plan (shard = id % N, local = id / N) and publishes the
  /// tombstone on every replica of that group. Same fail-closed contract as
  /// Upsert; NotFound when the id is unknown to the owning shard.
  Status Delete(uint64_t global_id);

  /// Administratively removes a replica from rotation (any state ->
  /// kKilled): it stops receiving queries and mutations and the recovery
  /// worker leaves it alone — the outage half of a kill/rejoin drill. A
  /// kill landing while the recovery worker has the replica mid-heal
  /// (kCatchingUp) sticks: every recovery transition is a CAS that treats
  /// the kill as an external claim and backs off.
  Status KillReplica(uint32_t shard, size_t replica);

  /// Readmits a killed replica as kQuarantined: the recovery worker replays
  /// the mutation-log suffix it missed (or snapshot-resyncs when the ring
  /// has dropped past its position) and only then returns it to rotation.
  Status RejoinReplica(uint32_t shard, size_t replica);

  ReplicaState replica_state(uint32_t shard, size_t replica) const;

  /// Last group mutation seq the replica has applied (the catch-up gauge).
  uint64_t last_applied_seq(uint32_t shard, size_t replica) const;

  /// Highest mutation seq assigned by `shard`'s group log.
  uint64_t log_last_seq(uint32_t shard) const;

  /// True when every replica of every group is kActive — no quarantine,
  /// catch-up, or admin kill outstanding. What the kill/rejoin drills and
  /// the proptest poll for before comparing answers.
  bool Converged() const;

  /// Coarse fleet health: kServing while every shard group has at least one
  /// kActive replica whose breaker is not open, kDegraded otherwise.
  /// Quarantined/killed replicas do not count toward liveness.
  Health health() const;

  /// Stops the router workers (draining the queue), then every engine.
  void Stop();

  RouterMetrics Metrics() const;

  /// The `router=` label this instance exports under in the obs::Registry.
  const std::string& instance() const { return instance_; }

  uint32_t shard_count() const {
    return static_cast<uint32_t>(groups_.size());
  }
  size_t replica_count(uint32_t shard) const {
    return groups_[shard].engines.size();
  }
  /// The replica engines of `shard` (router retains ownership).
  const std::vector<std::unique_ptr<Engine>>& replicas(uint32_t shard) const {
    return groups_[shard].engines;
  }

  const RouterOptions& options() const { return options_; }

 private:
  struct Request {
    std::string record;
    SteadyTime deadline;
    SteadyTime enqueued;
    std::string tenant;  // "" = the default tenant
    uint64_t seq = 0;    // arrival order (EDF tie-break / kFifo key)
    std::promise<Result<RouterReply>> promise;
  };

  /// Min-heap "greater" comparator (same semantics as the Engine's):
  /// earliest deadline first under kEdf with seq as the tie-break, seq only
  /// under kFifo.
  struct RequestUrgency {
    QueuePolicy policy;
    bool operator()(const Request& a, const Request& b) const {
      if (policy == QueuePolicy::kEdf && a.deadline != b.deadline) {
        return a.deadline > b.deadline;
      }
      return a.seq > b.seq;
    }
  };

  /// Per-replica recovery bookkeeping. Heap-pinned (unique_ptr storage)
  /// because atomics must not move; mutated by the mutation path under the
  /// group lock and by the recovery worker via CAS transitions.
  struct ReplicaMeta {
    std::atomic<uint32_t> state{
        static_cast<uint32_t>(ReplicaState::kActive)};
    /// Last group mutation seq this replica applied.
    std::atomic<uint64_t> last_applied{0};
    /// The replica returned an id that contradicts the group's winner (or
    /// failed the digest probe): its state is untrusted and catch-up must
    /// take the resync path, never replay.
    std::atomic<bool> divergent{false};
  };

  /// One shard's replica group plus the shared plan facts every replica's
  /// manifest agreed on at Create time.
  struct ShardGroup {
    std::vector<std::unique_ptr<Engine>> engines;
    std::vector<std::unique_ptr<ReplicaMeta>> meta;
    uint64_t row_offset = 0;
    /// Round-robin replica rotation ticket (per group, so one hot shard
    /// cannot skew its siblings' load).
    std::atomic<uint64_t> rotation{0};
    /// Serializes mutations within the group: replicas must see upserts in
    /// one order or their local id assignments diverge. Also taken by the
    /// recovery worker at digest probes, replay hand-off, and resync, so
    /// those see a quiescent cut of the mutation stream.
    std::mutex mutate_mu;
    /// Sequenced record of every accepted mutation (DESIGN.md §15); the
    /// replay source for catch-up. Created in the Router ctor (capacity
    /// comes from options).
    std::unique_ptr<recover::MutationLog> log;
    /// Router-tracked live row count (under mutate_mu): the digest probe's
    /// tie-breaker when two replicas disagree and neither holds a majority.
    uint64_t expected_rows = 0;
  };

  Router(std::vector<ShardGroup> groups,
         std::shared_ptr<embed::EmbeddingModel> model,
         const RouterOptions& options);

  void WorkerLoop();
  void ProcessBatch(std::vector<Request> batch);
  /// Shared broadcast tail of Upsert/Delete (DESIGN.md §15). Under the
  /// group lock: appends `record` to the mutation log FIRST (fail-closed —
  /// an unlogged mutation is refused), applies it to every kActive replica,
  /// quarantines replicas that miss it (only when a sibling succeeded —
  /// unanimous refusal means the replicas agree) or return a divergent id,
  /// rolls the log back when zero replicas accepted, and otherwise commits
  /// the record with the winner's id — only then does it become visible to
  /// catch-up replay.
  Result<uint64_t> BroadcastMutation(
      ShardGroup& group, recover::MutationRecord record,
      const std::function<Result<std::future<Result<MutateReply>>>(Engine&)>&
          apply);
  /// Replica visit order for one pick: rotation offset over the kActive
  /// replicas only (quarantined/killed replicas receive ZERO query
  /// traffic), tripped ones moved (stably) to the back — except on probe
  /// ticks, which keep the plain rotation so open breakers still see
  /// traffic.
  std::vector<size_t> ReplicaOrder(ShardGroup& group) const;

  /// kActive -> kQuarantined (no-op otherwise). `divergent` marks the
  /// replica's state untrusted, forcing the resync path.
  void Quarantine(ShardGroup& group, size_t replica, bool divergent,
                  const char* reason);
  void RecoveryLoop();
  void RecoveryTick();
  /// Anti-entropy probe of one group: compares the digests of its kActive
  /// replicas under the group lock and quarantines the minority under a
  /// strict-majority vote (expected_rows may break a no-majority tie only
  /// when it singles out exactly one content class; otherwise no verdict).
  /// Fail-closed per the recover/digest failpoint — a replica whose digest
  /// errs is skipped, never judged.
  void ProbeGroupDigests(size_t group_index);
  /// Heals one quarantined replica (replay or resync). Returns true when
  /// the replica was returned to rotation.
  bool TryHeal(size_t group_index, size_t replica);
  /// Final heal step, caller MUST hold group.mutate_mu: records the
  /// caught-up position (log.last_seq()) and CASes kCatchingUp -> kActive.
  /// Returns false when an external transition (admin kill) claimed the
  /// replica mid-heal — the kill sticks and the replica stays out of
  /// rotation.
  bool Activate(ShardGroup& group, ReplicaMeta& meta);
  /// Log-replay catch-up: bulk rounds off-lock, final tail + activation
  /// under the group lock so nothing slips between them.
  bool ReplayReplica(ShardGroup& group, size_t replica);
  /// Snapshot resync: under the group lock, a kActive live donor Compacts
  /// to a hand-off file and the target adopts it via Engine::ResyncFrom,
  /// then activates before the lock is released.
  bool ResyncReplica(ShardGroup& group, size_t group_index, size_t replica);
  /// Applies `records` to `engine` in order, verifying upsert id agreement;
  /// advances meta.last_applied per record. Flags divergence on mismatch.
  Status ApplyRecords(Engine& engine, ReplicaMeta& meta,
                      const std::vector<recover::MutationRecord>& records);

  std::vector<ShardGroup> groups_;
  std::shared_ptr<embed::EmbeddingModel> model_;
  RouterOptions options_;
  uint32_t shard_count_ = 1;
  size_t k_ = 10;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  /// Binary heap ordered by RequestUrgency; front() is the next to drain.
  std::vector<Request> queue_;
  uint64_t queue_seq_ = 0;  // next arrival sequence number, under mu_
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::string instance_;
  uint64_t collector_id_ = 0;
  std::atomic<bool> collector_registered_{false};

  AdmissionController admission_;
  TenantLedger ledger_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> throttled_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> partial_{0};
  std::atomic<uint64_t> shards_degraded_{0};
  std::atomic<uint64_t> sibling_retries_{0};
  std::atomic<uint64_t> upserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> mutation_failures_{0};
  std::atomic<uint64_t> mutation_divergence_{0};
  std::atomic<uint64_t> quarantines_{0};
  std::atomic<uint64_t> catchups_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> replayed_mutations_{0};
  std::atomic<uint64_t> digest_mismatches_{0};
  /// Names resync hand-off files uniquely within this router.
  std::atomic<uint64_t> resync_file_counter_{0};
  /// Recovery worker (started by the ctor when recover_tick_micros > 0).
  std::thread recovery_worker_;
  std::mutex recovery_mu_;
  std::condition_variable recovery_cv_;
  bool recovery_stop_ = false;
  /// Round-robin owner ticket for upserts (mutations spread across groups
  /// the same way the corpus rows do).
  std::atomic<uint64_t> mutation_ticket_{0};
  LatencyHistogram queue_micros_;
  LatencyHistogram embed_micros_;
  LatencyHistogram fanout_micros_;
  LatencyHistogram gather_micros_;
  LatencyHistogram merge_micros_;
  LatencyHistogram total_micros_;
  LatencyHistogram batch_size_;
  /// [shard][replica] round-trip histograms (LatencyHistogram is atomic and
  /// therefore pinned in place — hence unique_ptr storage).
  std::vector<std::vector<std::unique_ptr<LatencyHistogram>>> shard_micros_;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_ROUTER_H_
