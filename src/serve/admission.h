#ifndef EMBER_SERVE_ADMISSION_H_
#define EMBER_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/timer.h"

/// SLO-aware admission control for the micro-batchers (DESIGN.md §16):
/// per-tenant token buckets evaluated at Submit, plus the shared per-tenant
/// accounting both the Engine and the Router export under `{tenant=}`
/// labels. Everything here takes EXPLICIT timestamps (the CircuitBreaker
/// idiom) so the workload replayer can drive admission on a virtual clock
/// and a trace replays to bit-identical decisions at any thread count.
namespace ember::serve {

/// Queue drain order inside the micro-batcher.
///   kEdf  — earliest-deadline-first: the most urgent queued request drains
///           next; requests without deadlines (and equal deadlines) keep
///           arrival order, so a deadline-free workload behaves exactly
///           like kFifo.
///   kFifo — strict arrival order (the pre-PR10 behavior; kept as the
///           baseline the workload bench compares EDF against).
enum class QueuePolicy : uint32_t { kEdf = 0, kFifo = 1 };

const char* QueuePolicyName(QueuePolicy policy);

/// Per-submit options. The 2-arg Submit overloads remain for untenanted
/// callers; this struct is the tenant-aware path.
struct SubmitOptions {
  SteadyTime deadline = kNoDeadline;
  /// Admission/accounting identity. Empty = the untenanted default tenant
  /// (exported under tenant="default", never quota-limited unless a quota
  /// names "").
  std::string tenant;
  /// Timestamp the token bucket charges this submit at. kAdmitNow (the
  /// default) uses the real clock; the replayer's virtual mode passes the
  /// trace's arrival instants so bucket decisions replay bit-identically.
  SteadyTime admit_time = SteadyTime::min();
};

/// SubmitOptions.admit_time sentinel: "charge at the real current time".
inline constexpr SteadyTime kAdmitNow = SteadyTime::min();

/// One tenant's admission quota: a token bucket refilled at `rate_per_sec`
/// with capacity `burst`. Tenants without a quota are never throttled.
struct TenantQuota {
  std::string tenant;
  double rate_per_sec = 0;
  double burst = 0;
};

/// Classic token bucket with an explicit clock: refill is computed from the
/// timestamps the caller passes, never from a hidden SteadyNow(), so a
/// given (quota, timestamp sequence) always yields the same accept/refuse
/// sequence. Not thread-safe by itself; AdmissionController serializes.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst);

  /// Takes one token at `now` (refilling first). False = over quota.
  bool TryAcquire(SteadyTime now);

  double tokens() const { return tokens_; }

 private:
  double rate_per_sec_;
  double burst_;
  double tokens_;
  bool primed_ = false;
  SteadyTime last_;
};

/// The Submit-side admission gate: one token bucket per quota'd tenant.
/// Admit() fires the fail-closed `admit/bucket` failpoint BEFORE consulting
/// any bucket — an injected fault refuses the submission outright (the
/// decision could not be made, so nothing is admitted).
class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(const std::vector<TenantQuota>& quotas);

  /// True when at least one quota is configured — callers skip the gate
  /// (and its lock) entirely otherwise, so quota-free engines pay nothing.
  bool enabled() const { return !buckets_.empty(); }

  /// Ok, or Unavailable("tenant ... over quota") when the tenant's bucket
  /// is empty at `now`, or the injected status when `admit/bucket` fires.
  /// Tenants without a configured quota are always admitted.
  Status Admit(const std::string& tenant, SteadyTime now);

 private:
  std::mutex mu_;
  std::map<std::string, TokenBucket> buckets_;
};

/// Point-in-time per-tenant accounting, exported with `{tenant=}` labels.
struct TenantCounters {
  std::string tenant;  // "" is exported as "default"
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t completed = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;
  uint64_t throttled = 0;  // refused by the token bucket (never enqueued)
  uint64_t rejected = 0;   // refused by backpressure (queue full / stopped)
  uint64_t deadline_misses = 0;
  HistogramSnapshot total_micros;  // submit -> completion
};

/// Thread-safe per-tenant counter map shared by Engine and Router. One
/// mutex over a small map: tenants number in the handful, and the serve
/// path's per-request cost is a lookup + increment.
class TenantLedger {
 public:
  enum class Event : uint32_t {
    kSubmitted = 0,
    kCompleted = 1,
    kExpired = 2,
    kFailed = 3,
    kThrottled = 4,
    kRejected = 5,
    kDeadlineMiss = 6,
  };

  void Record(const std::string& tenant, Event event);
  void RecordLatency(const std::string& tenant, double micros);

  /// Sorted by tenant name; the "" tenant is renamed "default".
  std::vector<TenantCounters> Snapshot() const;

 private:
  struct Slot {
    uint64_t counts[7] = {0, 0, 0, 0, 0, 0, 0};
    std::unique_ptr<LatencyHistogram> total_micros =
        std::make_unique<LatencyHistogram>();
  };
  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_ADMISSION_H_
