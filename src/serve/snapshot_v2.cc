/// The EMBS0002 snapshot container: every matrix payload and the HNSW
/// adjacency stored as 64-byte-aligned sections with explicit offsets, so
/// LoadFrom can mmap the file and serve straight out of the mapping — no
/// deserialization, no heap copy, lazy page-in, and N processes share one
/// physical copy of the corpus through the page cache.
///
///   offset 0   magic "EMBS0002"                                (8 bytes)
///   offset 8   header                                          (56 bytes)
///                u32 version (= 2)
///                u32 section_count
///                u64 file_length
///                u64 manifest_offset, u64 manifest_length
///                u64 table_offset
///                u64 payload_checksum   FNV-1a over [64, file_length)
///                u64 header_checksum    FNV-1a over [0, 56)
///   ...        manifest blob (v1 manifest fields + storage u32)
///   ...        section table: section_count x {u64 id, offset, length}
///   ...        section payloads, each 64-byte-aligned, zero-padded between
///
/// Fail-closed validation order on load: header checksum (covers every
/// field the rest of the parse trusts), version, file_length == mapped
/// size (truncation), payload checksum (bit flips; skippable via
/// LoadOptions for the O(1) trusted path), then per-section alignment and
/// bounds before any pointer is formed, then per-kind structural checks
/// (AttachFlat / LoadAux / shape cross-checks) before the snapshot serves.

#include <algorithm>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/mmap_file.h"
#include "common/status.h"
#include "la/matrix.h"
#include "la/quantize.h"
#include "serve/snapshot.h"
#include "serve/snapshot_internal.h"

namespace ember::serve {

namespace {

constexpr uint32_t kFormatVersionV2 = 2;
constexpr size_t kHeaderBytes = 64;     // magic + HeaderV2
constexpr size_t kAlign = la::kMatrixAlign;
/// Generous ceiling (a snapshot uses at most 7 sections today); anything
/// larger is corruption, and bounding it keeps the table parse O(1).
constexpr uint32_t kMaxSections = 64;

// Section ids. Gaps between groups leave room for future per-kind
// sections without renumbering.
constexpr uint64_t kSecCorpusF32 = 1;     // rows x dim f32, row-major
constexpr uint64_t kSecCorpusI8 = 2;      // rows x dim int8 codes
constexpr uint64_t kSecQuantParams = 3;   // rows x la::QuantParams
constexpr uint64_t kSecHnswMeta = 10;     // options + entry + max_level blob
constexpr uint64_t kSecHnswLevels = 11;   // u32 per node
constexpr uint64_t kSecHnswEntryBase = 12;  // u64 x (rows + 1), prefix sum
constexpr uint64_t kSecHnswStarts = 13;   // u64 x (entry_base[rows] + 1)
constexpr uint64_t kSecHnswAdj = 14;      // u32 flat adjacency
constexpr uint64_t kSecLshPlanes = 20;    // (tables * bits) x dim f32
constexpr uint64_t kSecLshAux = 21;       // options + buckets blob (SaveAux)

struct HeaderV2 {
  uint32_t version = kFormatVersionV2;
  uint32_t section_count = 0;
  uint64_t file_length = 0;
  uint64_t manifest_offset = 0;
  uint64_t manifest_length = 0;
  uint64_t table_offset = 0;
  uint64_t payload_checksum = 0;
  uint64_t header_checksum = 0;
};
static_assert(sizeof(HeaderV2) == kHeaderBytes - 8,
              "magic + header must be exactly 64 bytes");

struct SectionEntry {
  uint64_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};
static_assert(sizeof(SectionEntry) == 24, "SectionEntry is an on-disk POD");

constexpr size_t Align64(size_t offset) {
  return (offset + kAlign - 1) & ~(kAlign - 1);
}

}  // namespace

Status Snapshot::SaveToV2(const std::string& path) const {
  // 1. Gather payloads. Pointer/length pairs reference storage that stays
  // alive until the image is assembled (index internals, or the local
  // blobs/flat holders below).
  struct Section {
    uint64_t id = 0;
    const void* data = nullptr;
    uint64_t length = 0;
  };
  std::vector<Section> sections;

  std::string manifest_blob;
  {
    BinaryWriter writer;
    internal::WriteManifest(writer, manifest_);
    writer.WriteU32(static_cast<uint32_t>(manifest_.storage));
    manifest_blob = writer.buffer();
  }

  const la::Matrix& corpus = data();
  sections.push_back({kSecCorpusF32, corpus.data(),
                      corpus.rows() * corpus.cols() * sizeof(float)});

  index::HnswIndex::FlatGraph flat;
  std::string hnsw_meta, lsh_aux;
  switch (manifest_.kind) {
    case IndexKind::kExact:
      if (manifest_.storage == StorageKind::kInt8) {
        if (!exact_.quantized()) {
          return Status::Internal(
              "int8 manifest with no quantized tier; call Quantize() first");
        }
        const la::QuantizedMatrix& q = exact_.quantized_matrix();
        sections.push_back({kSecCorpusI8, q.codes(), q.rows() * q.cols()});
        sections.push_back(
            {kSecQuantParams, q.params(), q.rows() * sizeof(la::QuantParams)});
      }
      break;
    case IndexKind::kHnsw: {
      BinaryWriter writer;
      writer.WriteU64(hnsw_.options().m);
      writer.WriteU64(hnsw_.options().ef_construction);
      writer.WriteU64(hnsw_.options().ef_search);
      writer.WriteU64(hnsw_.options().seed);
      writer.WriteU32(hnsw_.entry());
      writer.WriteU64(hnsw_.max_level());
      hnsw_meta = writer.buffer();
      flat = hnsw_.Flatten();
      sections.push_back({kSecHnswMeta, hnsw_meta.data(), hnsw_meta.size()});
      sections.push_back({kSecHnswLevels, flat.levels.data(),
                          flat.levels.size() * sizeof(uint32_t)});
      sections.push_back({kSecHnswEntryBase, flat.entry_base.data(),
                          flat.entry_base.size() * sizeof(uint64_t)});
      sections.push_back({kSecHnswStarts, flat.starts.data(),
                          flat.starts.size() * sizeof(uint64_t)});
      sections.push_back({kSecHnswAdj, flat.adj.data(),
                          flat.adj.size() * sizeof(uint32_t)});
      break;
    }
    case IndexKind::kLsh: {
      sections.push_back(
          {kSecLshPlanes, lsh_.planes().data(),
           lsh_.planes().rows() * lsh_.planes().cols() * sizeof(float)});
      BinaryWriter writer;
      lsh_.SaveAux(writer);
      lsh_aux = writer.buffer();
      sections.push_back({kSecLshAux, lsh_aux.data(), lsh_aux.size()});
      break;
    }
  }

  // 2. Lay out the file: header, manifest, section table, then payloads,
  // every payload at a 64-byte boundary.
  const uint64_t manifest_offset = kHeaderBytes;
  const uint64_t table_offset = Align64(manifest_offset + manifest_blob.size());
  std::vector<SectionEntry> table(sections.size());
  uint64_t cursor = Align64(table_offset + sections.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < sections.size(); ++i) {
    table[i] = {sections[i].id, cursor, sections[i].length};
    cursor = Align64(cursor + sections[i].length);
  }
  const uint64_t file_length = cursor;

  // 3. Assemble (padding stays zero) and patch the checksums last.
  std::string image(file_length, '\0');
  std::memcpy(image.data(), internal::kMagicV2, sizeof(internal::kMagicV2));
  if (!manifest_blob.empty()) {
    std::memcpy(image.data() + manifest_offset, manifest_blob.data(),
                manifest_blob.size());
  }
  if (!table.empty()) {
    std::memcpy(image.data() + table_offset, table.data(),
                table.size() * sizeof(SectionEntry));
  }
  for (size_t i = 0; i < sections.size(); ++i) {
    if (sections[i].length > 0) {
      std::memcpy(image.data() + table[i].offset, sections[i].data,
                  sections[i].length);
    }
  }
  HeaderV2 header;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.file_length = file_length;
  header.manifest_offset = manifest_offset;
  header.manifest_length = manifest_blob.size();
  header.table_offset = table_offset;
  header.payload_checksum =
      Fnv1a64(image.data() + kHeaderBytes, file_length - kHeaderBytes);
  std::memcpy(image.data() + 8, &header, sizeof(header));
  header.header_checksum = Fnv1a64(image.data(), kHeaderBytes - 8);
  std::memcpy(image.data() + 8, &header, sizeof(header));

  return WriteBytesAtomic(path, image);
}

Result<Snapshot> Snapshot::LoadFromV2(const std::string& path,
                                      const LoadOptions& options,
                                      MmapFile file) {
  const char* base = file.data();
  const size_t size = file.size();
  const auto corrupt = [&path](const std::string& why) {
    return Status::IoError(path + ": " + why);
  };

  // Header first: its own checksum covers every field the rest of the
  // parse trusts, so a flipped bit in an offset cannot redirect a read.
  if (size < kHeaderBytes) return corrupt("truncated header");
  HeaderV2 header;
  std::memcpy(&header, base + 8, sizeof(header));
  if (header.header_checksum != Fnv1a64(base, kHeaderBytes - 8)) {
    return corrupt("header checksum mismatch");
  }
  if (header.version != kFormatVersionV2) {
    return corrupt("unsupported EMBS0002 version");
  }
  if (header.file_length != size) {
    return corrupt("length mismatch (torn write?)");
  }
  if (options.verify_checksum &&
      header.payload_checksum !=
          Fnv1a64(base + kHeaderBytes, size - kHeaderBytes)) {
    return corrupt("checksum mismatch");
  }
  if (header.manifest_offset < kHeaderBytes ||
      header.manifest_offset > size ||
      header.manifest_length > size - header.manifest_offset) {
    return corrupt("manifest out of bounds");
  }
  if (header.section_count > kMaxSections ||
      header.table_offset < kHeaderBytes || header.table_offset > size ||
      header.section_count * sizeof(SectionEntry) >
          size - header.table_offset) {
    return corrupt("section table out of bounds");
  }

  Snapshot snapshot;
  {
    BinaryReader reader(std::string_view(base + header.manifest_offset,
                                         header.manifest_length));
    if (!internal::ReadManifest(reader, snapshot.manifest_)) {
      return corrupt("corrupt snapshot manifest");
    }
    const uint32_t storage = reader.ReadU32();
    if (!reader.ok() || reader.remaining() != 0 ||
        storage > static_cast<uint32_t>(StorageKind::kInt8)) {
      return corrupt("corrupt snapshot manifest");
    }
    snapshot.manifest_.storage = static_cast<StorageKind>(storage);
  }
  const SnapshotManifest& manifest = snapshot.manifest_;
  if (manifest.storage == StorageKind::kInt8 &&
      manifest.kind != IndexKind::kExact) {
    return corrupt("int8 storage on a non-exact index");
  }
  const uint64_t rows = manifest.rows;
  const uint64_t dim = manifest.dim;
  if (rows > 0 && dim == 0) return corrupt("zero dim with nonzero rows");

  // Every section must be 64-byte-aligned and inside the file before a
  // single view pointer is formed.
  std::vector<SectionEntry> table(header.section_count);
  if (!table.empty()) {
    std::memcpy(table.data(), base + header.table_offset,
                table.size() * sizeof(SectionEntry));
  }
  for (const SectionEntry& entry : table) {
    if (entry.offset % kAlign != 0 || entry.offset < kHeaderBytes ||
        entry.offset > size || entry.length > size - entry.offset) {
      return corrupt("section out of bounds");
    }
    for (const SectionEntry& other : table) {
      if (&other != &entry && other.id == entry.id) {
        return corrupt("duplicate section id");
      }
    }
  }
  const auto find = [&table](uint64_t id) -> const SectionEntry* {
    for (const SectionEntry& entry : table) {
      if (entry.id == id) return &entry;
    }
    return nullptr;
  };
  /// Pointer to a section that must exist with exactly `length` bytes.
  const auto require = [&](uint64_t id, uint64_t length) -> const char* {
    const SectionEntry* entry = find(id);
    if (entry == nullptr || entry->length != length) return nullptr;
    return base + entry->offset;
  };

  if (dim != 0 && rows > UINT64_MAX / dim / sizeof(float)) {
    return corrupt("corpus shape overflow");
  }
  // `rows <= size / 4` from here on (the f32 section length check), so the
  // per-kind element-count arithmetic below cannot overflow u64.
  const uint64_t f32_len = rows * dim * sizeof(float);
  const char* f32 = require(kSecCorpusF32, f32_len);
  if (f32 == nullptr) return corrupt("missing or misshapen corpus section");
  // Same injection site the v1 index loaders check, so fault drills cover
  // the mmap path too.
  const Status index_fp = fail::Check("index/load");
  if (!index_fp.ok()) return index_fp;
  la::Matrix corpus = la::Matrix::View(
      reinterpret_cast<const float*>(f32), rows, dim);

  switch (manifest.kind) {
    case IndexKind::kExact: {
      snapshot.exact_.Build(std::move(corpus));
      if (manifest.storage == StorageKind::kInt8) {
        const char* codes = require(kSecCorpusI8, rows * dim);
        const char* params =
            require(kSecQuantParams, rows * sizeof(la::QuantParams));
        if (codes == nullptr || params == nullptr) {
          return corrupt("missing or misshapen quantized sections");
        }
        snapshot.exact_.AttachQuantized(la::QuantizedMatrix::View(
            reinterpret_cast<const int8_t*>(codes),
            reinterpret_cast<const la::QuantParams*>(params), rows, dim));
      }
      break;
    }
    case IndexKind::kHnsw: {
      const SectionEntry* meta = find(kSecHnswMeta);
      const char* levels = require(kSecHnswLevels, rows * sizeof(uint32_t));
      const char* entry_base =
          require(kSecHnswEntryBase, (rows + 1) * sizeof(uint64_t));
      const SectionEntry* starts = find(kSecHnswStarts);
      const SectionEntry* adj = find(kSecHnswAdj);
      if (meta == nullptr || levels == nullptr || entry_base == nullptr ||
          starts == nullptr || starts->length % sizeof(uint64_t) != 0 ||
          starts->length == 0 || adj == nullptr ||
          adj->length % sizeof(uint32_t) != 0) {
        return corrupt("missing or misshapen HNSW graph sections");
      }
      BinaryReader reader(
          std::string_view(base + meta->offset, meta->length));
      index::HnswOptions hnsw_options;
      hnsw_options.m = reader.ReadU64();
      hnsw_options.ef_construction = reader.ReadU64();
      hnsw_options.ef_search = reader.ReadU64();
      hnsw_options.seed = reader.ReadU64();
      const uint32_t entry = reader.ReadU32();
      const uint64_t max_level = reader.ReadU64();
      if (!reader.ok() || reader.remaining() != 0) {
        return corrupt("corrupt HNSW meta section");
      }
      if (!snapshot.hnsw_.AttachFlat(
              std::move(corpus), hnsw_options, entry, max_level,
              reinterpret_cast<const uint32_t*>(levels),
              reinterpret_cast<const uint64_t*>(entry_base),
              reinterpret_cast<const uint64_t*>(base + starts->offset),
              starts->length / sizeof(uint64_t),
              reinterpret_cast<const uint32_t*>(base + adj->offset),
              adj->length / sizeof(uint32_t))) {
        return corrupt("HNSW graph invariants violated");
      }
      break;
    }
    case IndexKind::kLsh: {
      const SectionEntry* planes = find(kSecLshPlanes);
      const SectionEntry* aux = find(kSecLshAux);
      if (planes == nullptr || aux == nullptr ||
          (dim == 0 ? planes->length != 0
                    : planes->length % (dim * sizeof(float)) != 0)) {
        return corrupt("missing or misshapen LSH sections");
      }
      const uint64_t plane_rows =
          dim == 0 ? 0 : planes->length / (dim * sizeof(float));
      la::Matrix plane_view = la::Matrix::View(
          reinterpret_cast<const float*>(base + planes->offset), plane_rows,
          dim);
      BinaryReader reader(std::string_view(base + aux->offset, aux->length));
      if (!snapshot.lsh_.LoadAux(reader, std::move(corpus),
                                 std::move(plane_view)) ||
          reader.remaining() != 0) {
        return corrupt("corrupt LSH aux section");
      }
      break;
    }
  }

  // The indexes now hold raw views into the mapping; pin it for the life
  // of every copy of this snapshot.
  snapshot.mapping_ = std::make_shared<MmapFile>(std::move(file));
  snapshot.bytes_mapped_ = size;
  return snapshot;
}

}  // namespace ember::serve
