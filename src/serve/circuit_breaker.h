#ifndef EMBER_SERVE_CIRCUIT_BREAKER_H_
#define EMBER_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/timer.h"

namespace ember::serve {

/// Circuit-breaker tuning. The window counts stage outcomes (one per
/// processed batch), not individual requests, so thresholds are stable
/// across batch sizes.
struct BreakerOptions {
  /// Sliding window of the most recent outcomes considered for tripping.
  size_t window = 32;
  /// No tripping before this many outcomes are in the window — a single
  /// early failure must not open the breaker.
  size_t min_samples = 8;
  /// Failure fraction of the window that opens the breaker.
  double trip_ratio = 0.5;
  /// Cool-down after opening before half-open probes are admitted.
  int64_t open_micros = 50'000;
  /// Consecutive successful probes required in half-open to close again;
  /// any half-open failure reopens immediately.
  size_t half_open_successes = 2;
};

/// Classic three-state circuit breaker (closed -> open -> half-open) over a
/// sliding window of failure outcomes. The serving engine consults Allow()
/// at Submit time — an open breaker sheds doomed work in O(1) instead of
/// queueing it behind a failing stage — and reports each batch outcome via
/// RecordSuccess/RecordFailure. All methods are thread-safe; state
/// transitions are driven by the caller-supplied monotonic time, so tests
/// control the clock.
class CircuitBreaker {
 public:
  enum class State : uint32_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(const BreakerOptions& options = {});

  /// May work be admitted now? Transitions open -> half-open once the
  /// cool-down has elapsed.
  bool Allow(SteadyTime now);

  void RecordSuccess(SteadyTime now);
  void RecordFailure(SteadyTime now);

  /// Last observed state (no time-based transition; an open breaker whose
  /// cool-down has lapsed still reads kOpen until the next Allow()).
  State state() const;
  /// Times the breaker transitioned closed/half-open -> open.
  uint64_t trips() const;

 private:
  void TripLocked(SteadyTime now);
  void ResetWindowLocked();
  void PushOutcomeLocked(bool failure, SteadyTime now);

  const BreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<uint8_t> ring_;  // 1 = failure
  size_t ring_pos_ = 0;
  size_t ring_count_ = 0;
  size_t ring_failures_ = 0;
  SteadyTime opened_at_{};
  size_t probe_successes_ = 0;
  uint64_t trips_ = 0;
};

const char* BreakerStateName(CircuitBreaker::State state);

}  // namespace ember::serve

#endif  // EMBER_SERVE_CIRCUIT_BREAKER_H_
