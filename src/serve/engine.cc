#include "serve/engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace ember::serve {

namespace {

/// Samples an EngineMetrics into registry exposition form. Counter names
/// follow Prometheus conventions (_total suffix on monotone counters); the
/// stage histograms keep their EngineMetrics field names.
std::vector<obs::Sample> MetricsToSamples(const EngineMetrics& metrics,
                                          const std::string& instance,
                                          const Snapshot& snapshot) {
  // The storage label distinguishes f32 from int8-serving engines in one
  // scrape, so throughput/latency series can be compared per tier.
  const obs::Labels labels = {
      {"engine", instance},
      {"storage", StorageKindName(snapshot.manifest().storage)}};
  std::vector<obs::Sample> samples;
  auto counter = [&](const char* name, const char* help, uint64_t value) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kCounter;
    sample.labels = labels;
    sample.value = static_cast<double>(value);
    samples.push_back(std::move(sample));
  };
  auto histogram = [&](const char* name, const char* help,
                       const HistogramSnapshot& snapshot) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kHistogram;
    sample.labels = labels;
    sample.histogram = snapshot;
    samples.push_back(std::move(sample));
  };
  counter("ember_serve_submitted_total", "Requests accepted into the queue",
          metrics.submitted);
  counter("ember_serve_completed_total", "Requests answered with neighbors",
          metrics.completed);
  counter("ember_serve_rejected_total", "Requests refused at Submit",
          metrics.rejected);
  counter("ember_serve_expired_total", "Requests shed before embedding",
          metrics.expired);
  counter("ember_serve_failed_total", "Requests failed with an error",
          metrics.failed);
  counter("ember_serve_deadline_misses_total",
          "Requests completed after their deadline", metrics.deadline_misses);
  counter("ember_serve_batches_total", "Micro-batches processed",
          metrics.batches);
  counter("ember_serve_retries_total", "Embed/reload retry attempts",
          metrics.retries);
  counter("ember_serve_fallbacks_total",
          "Requests answered by the degraded exact scan", metrics.fallbacks);
  counter("ember_serve_breaker_trips_total",
          "Circuit breaker open transitions", metrics.breaker_trips);
  counter("ember_serve_short_circuits_total",
          "Submits refused while the breaker was open",
          metrics.short_circuits);
  counter("ember_serve_reloads_total", "Successful hot snapshot swaps",
          metrics.reloads);
  counter("ember_serve_reload_failures_total", "Rejected snapshot reloads",
          metrics.reload_failures);
  auto gauge = [&](const char* name, const char* help, double value) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kGauge;
    sample.labels = labels;
    sample.value = value;
    samples.push_back(std::move(sample));
  };
  gauge("ember_serve_health",
        "Engine health (0=serving 1=degraded 2=tripped 3=loading)",
        static_cast<double>(metrics.health));
  gauge("ember_serve_snapshot_load_micros",
        "Wall-clock load time of the serving snapshot",
        static_cast<double>(snapshot.load_micros()));
  gauge("ember_serve_snapshot_bytes_mapped",
        "Bytes mmap'ed by the serving snapshot (0 = heap-loaded)",
        static_cast<double>(snapshot.bytes_mapped()));
  histogram("ember_serve_queue_micros", "Submit to dequeue wait per request",
            metrics.queue_micros);
  histogram("ember_serve_embed_micros", "Vectorization time per batch",
            metrics.embed_micros);
  histogram("ember_serve_query_micros", "Index search time per batch",
            metrics.query_micros);
  histogram("ember_serve_postprocess_micros",
            "Reply assembly / future completion time per batch",
            metrics.postprocess_micros);
  histogram("ember_serve_total_micros", "Submit to completion per request",
            metrics.total_micros);
  histogram("ember_serve_batch_size", "Live requests per processed batch",
            metrics.batch_size);
  return samples;
}

}  // namespace

const char* HealthName(Health health) {
  switch (health) {
    case Health::kServing:
      return "serving";
    case Health::kDegraded:
      return "degraded";
    case Health::kTripped:
      return "tripped";
    case Health::kLoading:
      return "loading";
  }
  return "unknown";
}

Status Engine::CheckModelCompatible(const SnapshotManifest& manifest,
                                    const embed::EmbeddingModel& model) {
  if (model.info().code != manifest.model_code) {
    return Status::InvalidArgument(
        "snapshot was built with model '" + manifest.model_code +
        "' but the engine embeds with '" + model.info().code + "'");
  }
  if (model.info().dim != manifest.dim && manifest.rows > 0) {
    return Status::InvalidArgument("snapshot/model dimensionality mismatch");
  }
  return Status::Ok();
}

Result<std::unique_ptr<Engine>> Engine::Create(
    Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
    const EngineOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("engine requires a query-side model");
  }
  Status compatible = CheckModelCompatible(snapshot.manifest(), *model);
  if (!compatible.ok()) return compatible;
  // Weight building is neither thread-safe nor cheap; force it here so the
  // workers (and every Submit) only ever see an initialized model.
  model->Initialize();
  return std::unique_ptr<Engine>(
      new Engine(std::move(snapshot), std::move(model), options));
}

Engine::Engine(Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
               const EngineOptions& options)
    : snapshot_(std::make_shared<const Snapshot>(std::move(snapshot))),
      model_(std::move(model)),
      options_(options),
      breaker_(options.breaker) {
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_wait_micros = std::max<int64_t>(0, options_.max_wait_micros);
  k_ = options_.k > 0 ? options_.k
                      : std::max<size_t>(1, snapshot_->manifest().default_k);
  static std::atomic<uint64_t> next_instance{0};
  instance_ = std::to_string(next_instance.fetch_add(1));
  collector_id_ = obs::Registry::Global().AddCollector(
      [this] {
        return MetricsToSamples(Metrics(), instance_, *this->snapshot());
      });
  collector_registered_.store(true, std::memory_order_release);
  workers_.reserve(options_.workers);
  for (size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() { Stop(); }

void Engine::Stop() {
  // Unregister the metrics collector first: RemoveCollector is a barrier
  // (the registry holds its mutex through every collection), so after this
  // returns no scrape can touch a dying engine.
  if (collector_registered_.exchange(false, std::memory_order_acq_rel)) {
    obs::Registry::Global().RemoveCollector(collector_id_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Result<std::future<Result<QueryReply>>> Engine::Submit(std::string record,
                                                       SteadyTime deadline) {
  Request request;
  request.record = std::move(record);
  request.deadline = deadline;
  return Enqueue(std::move(request));
}

Result<std::future<Result<QueryReply>>> Engine::SubmitEmbedded(
    std::vector<float> embedding, SteadyTime deadline) {
  if (embedding.size() != model_->info().dim) {
    return Status::InvalidArgument(
        "pre-embedded query has dim " + std::to_string(embedding.size()) +
        " but the engine's model produces dim " +
        std::to_string(model_->info().dim));
  }
  Request request;
  request.embedding = std::move(embedding);
  request.pre_embedded = true;
  request.deadline = deadline;
  return Enqueue(std::move(request));
}

Result<std::future<Result<QueryReply>>> Engine::Enqueue(Request request) {
  // Breaker fast-fail outside the queue lock: while the embed/query stages
  // are known-broken, shedding here keeps the queue from filling with work
  // that would only be failed milliseconds later.
  if (!breaker_.Allow(SteadyNow())) {
    short_circuits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("circuit breaker open");
  }
  request.enqueued = SteadyNow();
  std::future<Result<QueryReply>> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("engine is stopped");
    }
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("queue full (" +
                                 std::to_string(options_.max_queue) + ")");
    }
    queue_.push_back(std::move(request));
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

void Engine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained: stop only once the queue is empty
        continue;
      }
      // Micro-batch window: drain as soon as max_batch requests are ready,
      // or once the OLDEST queued request has waited out max_wait_micros.
      // wait_until releases the lock, so another worker may drain the queue
      // meanwhile — hence the re-check below instead of assuming front().
      const SteadyTime window_end =
          AfterMicros(queue_.front().enqueued, options_.max_wait_micros);
      queue_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ProcessBatch(std::move(batch));
  }
}

void Engine::ProcessBatch(std::vector<Request> batch) {
  const SteadyTime drained = SteadyNow();
  const uint64_t batch_no = batches_.fetch_add(1, std::memory_order_relaxed);

  // Trace root per batch, keyed by the batch number: span ids depend on
  // (batch_no, stage name, stage order) only, so a fixed-seed run yields
  // the same span tree at any worker/thread count.
  obs::Span batch_span("serve/batch", obs::Span::RootTag{}, batch_no);
  batch_span.AddCount("requests", batch.size());

  // Deadline shedding BEFORE the expensive embed: a request that already
  // missed its deadline gets its status immediately and costs no compute.
  std::vector<Request> live;
  live.reserve(batch.size());
  {
    obs::Span shed_span("serve/dequeue_shed");
    for (Request& request : batch) {
      queue_micros_.Record(MicrosBetween(request.enqueued, drained));
      if (request.deadline < drained) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        request.promise.set_value(
            Status::DeadlineExceeded("shed before embedding"));
      } else {
        live.push_back(std::move(request));
      }
    }
  }
  if (live.empty()) return;
  batch_span.AddCount("live", live.size());
  batch_size_.Record(static_cast<double>(live.size()));

  // Pin the snapshot for the whole batch: a concurrent ReloadSnapshot may
  // swap the engine past it, but this batch's queries all answer from one
  // coherent corpus.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const size_t k = k_.load(std::memory_order_relaxed);

  // A batch can mix Submit records with SubmitEmbedded vectors (the Router
  // fan-out path): only the records go through the model; pre-embedded rows
  // are copied into their slots and pay no embed cost — and an all-
  // pre-embedded batch never evaluates the engine/embed failpoint, because
  // nothing fallible runs (embed faults belong to whoever embedded).
  std::vector<std::string> sentences;
  std::vector<size_t> embed_slots;
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i].pre_embedded) continue;
    embed_slots.push_back(i);
    sentences.push_back(live[i].record);
  }

  // Embed stage, under the retry policy. VectorizeAll itself cannot fail
  // (pure compute), so the fallible part is the boundary the failpoint
  // models: upstream tokenizer/model-server hiccups.
  WallTimer timer;
  la::Matrix vectors(live.size(), model_->info().dim);
  uint64_t embed_retries = 0;
  Status embedded = Status::Ok();
  {
    obs::Span embed_span("serve/embed");
    if (!embed_slots.empty()) {
      la::Matrix fresh;
      embedded = RetryStatus(
          options_.embed_retry, batch_no,
          [&] {
            Status injected = fail::Check("engine/embed");
            if (!injected.ok()) return injected;
            fresh = model_->VectorizeAll(sentences);
            return Status::Ok();
          },
          &embed_retries);
      if (embedded.ok()) {
        for (size_t slot = 0; slot < embed_slots.size(); ++slot) {
          std::memcpy(vectors.Row(embed_slots[slot]), fresh.Row(slot),
                      vectors.cols() * sizeof(float));
        }
      }
    }
    for (size_t i = 0; i < live.size(); ++i) {
      if (!live[i].pre_embedded) continue;
      std::memcpy(vectors.Row(i), live[i].embedding.data(),
                  vectors.cols() * sizeof(float));
    }
    embed_span.AddCount("retries", embed_retries);
  }
  retries_.fetch_add(embed_retries, std::memory_order_relaxed);
  embed_micros_.Record(timer.Restart() * 1e6);
  if (!embedded.ok()) {
    // Permanent embed failure: feed the breaker first (so the trip is
    // visible by the time waiters observe their error), then fail the
    // batch loudly — never silently drop it.
    breaker_.RecordFailure(SteadyNow());
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (Request& request : live) request.promise.set_value(embedded);
    EMBER_WARN("embed stage failed after %llu retries: %s",
               static_cast<unsigned long long>(embed_retries),
               embedded.ToString().c_str());
    return;
  }

  // Query stage. A failing primary index degrades to the exact brute-force
  // scan of the same corpus (options_.allow_degraded) instead of failing
  // the batch: availability first, and for exact snapshots the fallback is
  // bit-identical anyway.
  std::vector<std::vector<index::Neighbor>> neighbors;
  bool via_fallback = false;
  {
    obs::Span query_span("serve/query");
    const Status query_fault = fail::Check("engine/query");
    if (query_fault.ok()) {
      neighbors = snap->QueryBatch(vectors, k);
    } else if (options_.allow_degraded) {
      neighbors = snap->FallbackQueryBatch(vectors, k);
      via_fallback = true;
      fallbacks_.fetch_add(live.size(), std::memory_order_relaxed);
      EMBER_WARN("primary index query failed (%s); served by exact fallback",
                 query_fault.ToString().c_str());
    } else {
      breaker_.RecordFailure(SteadyNow());
      failed_.fetch_add(live.size(), std::memory_order_relaxed);
      for (Request& request : live) request.promise.set_value(query_fault);
      return;
    }
  }
  degraded_.store(via_fallback, std::memory_order_relaxed);
  query_micros_.Record(timer.Restart() * 1e6);

  const SteadyTime done = SteadyNow();
  breaker_.RecordSuccess(done);
  {
    obs::Span complete_span("serve/complete");
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i].deadline < done) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      total_micros_.Record(MicrosBetween(live[i].enqueued, done));
      completed_.fetch_add(1, std::memory_order_relaxed);
      // The request's own span runs from enqueue (client thread) to
      // completion (this worker) — an explicit-timestamp emit, parented
      // under the batch and keyed by the in-batch slot.
      obs::EmitSpan("serve/request", batch_span.context(), i,
                    live[i].enqueued, done);
      live[i].promise.set_value(QueryReply{std::move(neighbors[i])});
    }
  }
  postprocess_micros_.Record(timer.Seconds() * 1e6);
}

Status Engine::ReloadSnapshot(const std::string& path,
                              const RetryPolicy& policy) {
  // One reload at a time; serving continues on the old snapshot throughout.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  reloading_.store(true, std::memory_order_release);
  struct ClearLoading {
    std::atomic<bool>& flag;
    ~ClearLoading() { flag.store(false, std::memory_order_release); }
  } clear_loading{reloading_};

  uint64_t load_retries = 0;
  Result<Snapshot> loaded = Snapshot::LoadWithRetry(path, policy,
                                                    &load_retries);
  retries_.fetch_add(load_retries, std::memory_order_relaxed);
  Status status = loaded.status();
  if (status.ok()) status = CheckModelCompatible(loaded.value().manifest(), *model_);
  if (status.ok()) status = loaded.value().Validate();
  if (!status.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    EMBER_WARN("snapshot reload from '%s' rejected (still serving the old "
               "snapshot): %s",
               path.c_str(), status.ToString().c_str());
    return status;
  }

  auto fresh = std::make_shared<const Snapshot>(std::move(loaded.value()));

  // Warm probe: run a real query over a few corpus rows BEFORE the swap, so
  // the first production batch on the new snapshot pays no cold-start cost
  // and a snapshot whose index crashes on use never goes live.
  const la::Matrix& corpus = fresh->data();
  const size_t probe_rows = std::min<size_t>(4, corpus.rows());
  if (probe_rows > 0) {
    la::Matrix probe(probe_rows, corpus.cols());
    std::memcpy(probe.data(), corpus.data(),
                probe_rows * corpus.cols() * sizeof(float));
    const size_t probe_k =
        std::min<size_t>(k_.load(std::memory_order_relaxed), corpus.rows());
    const auto warm = fresh->QueryBatch(probe, std::max<size_t>(1, probe_k));
    if (warm.size() != probe_rows) {
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      return Status::Internal("snapshot reload: warm probe returned " +
                              std::to_string(warm.size()) + " results for " +
                              std::to_string(probe_rows) + " queries");
    }
  }

  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
    if (options_.k == 0) {
      k_.store(std::max<size_t>(1, snapshot_->manifest().default_k),
               std::memory_order_relaxed);
    }
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Health Engine::health() const {
  if (reloading_.load(std::memory_order_acquire)) return Health::kLoading;
  if (breaker_.state() != CircuitBreaker::State::kClosed) {
    return Health::kTripped;
  }
  if (degraded_.load(std::memory_order_relaxed)) return Health::kDegraded;
  return Health::kServing;
}

std::shared_ptr<const Snapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

EngineMetrics Engine::Metrics() const {
  EngineMetrics metrics;
  metrics.submitted = submitted_.load(std::memory_order_relaxed);
  metrics.completed = completed_.load(std::memory_order_relaxed);
  metrics.rejected = rejected_.load(std::memory_order_relaxed);
  metrics.expired = expired_.load(std::memory_order_relaxed);
  metrics.failed = failed_.load(std::memory_order_relaxed);
  metrics.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  metrics.batches = batches_.load(std::memory_order_relaxed);
  metrics.health = health();
  metrics.retries = retries_.load(std::memory_order_relaxed);
  metrics.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  metrics.breaker_trips = breaker_.trips();
  metrics.short_circuits = short_circuits_.load(std::memory_order_relaxed);
  metrics.reloads = reloads_.load(std::memory_order_relaxed);
  metrics.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  metrics.queue_micros = queue_micros_.Snapshot();
  metrics.embed_micros = embed_micros_.Snapshot();
  metrics.query_micros = query_micros_.Snapshot();
  metrics.postprocess_micros = postprocess_micros_.Snapshot();
  metrics.total_micros = total_micros_.Snapshot();
  metrics.batch_size = batch_size_.Snapshot();
  return metrics;
}

}  // namespace ember::serve
