#include "serve/engine.h"

#include <algorithm>
#include <utility>

namespace ember::serve {

Result<std::unique_ptr<Engine>> Engine::Create(
    Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
    const EngineOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("engine requires a query-side model");
  }
  const SnapshotManifest& manifest = snapshot.manifest();
  if (model->info().code != manifest.model_code) {
    return Status::InvalidArgument(
        "snapshot was built with model '" + manifest.model_code +
        "' but the engine embeds with '" + model->info().code + "'");
  }
  if (model->info().dim != manifest.dim && manifest.rows > 0) {
    return Status::InvalidArgument("snapshot/model dimensionality mismatch");
  }
  // Weight building is neither thread-safe nor cheap; force it here so the
  // workers (and every Submit) only ever see an initialized model.
  model->Initialize();
  return std::unique_ptr<Engine>(
      new Engine(std::move(snapshot), std::move(model), options));
}

Engine::Engine(Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
               const EngineOptions& options)
    : snapshot_(std::move(snapshot)),
      model_(std::move(model)),
      options_(options) {
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_wait_micros = std::max<int64_t>(0, options_.max_wait_micros);
  k_ = options_.k > 0 ? options_.k
                      : std::max<size_t>(1, snapshot_.manifest().default_k);
  workers_.reserve(options_.workers);
  for (size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() { Stop(); }

void Engine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Result<std::future<Result<QueryReply>>> Engine::Submit(std::string record,
                                                       SteadyTime deadline) {
  Request request;
  request.record = std::move(record);
  request.deadline = deadline;
  request.enqueued = SteadyNow();
  std::future<Result<QueryReply>> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("engine is stopped");
    }
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("queue full (" +
                                 std::to_string(options_.max_queue) + ")");
    }
    queue_.push_back(std::move(request));
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

void Engine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained: stop only once the queue is empty
        continue;
      }
      // Micro-batch window: drain as soon as max_batch requests are ready,
      // or once the OLDEST queued request has waited out max_wait_micros.
      // wait_until releases the lock, so another worker may drain the queue
      // meanwhile — hence the re-check below instead of assuming front().
      const SteadyTime window_end =
          AfterMicros(queue_.front().enqueued, options_.max_wait_micros);
      queue_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ProcessBatch(std::move(batch));
  }
}

void Engine::ProcessBatch(std::vector<Request> batch) {
  const SteadyTime drained = SteadyNow();
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Deadline shedding BEFORE the expensive embed: a request that already
  // missed its deadline gets its status immediately and costs no compute.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    queue_micros_.Record(MicrosBetween(request.enqueued, drained));
    if (request.deadline < drained) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      request.promise.set_value(
          Status::DeadlineExceeded("shed before embedding"));
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;
  batch_size_.Record(static_cast<double>(live.size()));

  std::vector<std::string> sentences;
  sentences.reserve(live.size());
  for (const Request& request : live) sentences.push_back(request.record);

  WallTimer timer;
  const la::Matrix vectors = model_->VectorizeAll(sentences);
  embed_micros_.Record(timer.Restart() * 1e6);
  std::vector<std::vector<index::Neighbor>> neighbors =
      snapshot_.QueryBatch(vectors, k_);
  query_micros_.Record(timer.Seconds() * 1e6);

  const SteadyTime done = SteadyNow();
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i].deadline < done) {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    total_micros_.Record(MicrosBetween(live[i].enqueued, done));
    completed_.fetch_add(1, std::memory_order_relaxed);
    live[i].promise.set_value(QueryReply{std::move(neighbors[i])});
  }
}

EngineMetrics Engine::Metrics() const {
  EngineMetrics metrics;
  metrics.submitted = submitted_.load(std::memory_order_relaxed);
  metrics.completed = completed_.load(std::memory_order_relaxed);
  metrics.rejected = rejected_.load(std::memory_order_relaxed);
  metrics.expired = expired_.load(std::memory_order_relaxed);
  metrics.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  metrics.batches = batches_.load(std::memory_order_relaxed);
  metrics.queue_micros = queue_micros_.Snapshot();
  metrics.embed_micros = embed_micros_.Snapshot();
  metrics.query_micros = query_micros_.Snapshot();
  metrics.total_micros = total_micros_.Snapshot();
  metrics.batch_size = batch_size_.Snapshot();
  return metrics;
}

}  // namespace ember::serve
