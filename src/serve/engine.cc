#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace ember::serve {

namespace {

/// Samples an EngineMetrics into registry exposition form. Counter names
/// follow Prometheus conventions (_total suffix on monotone counters); the
/// stage histograms keep their EngineMetrics field names.
std::vector<obs::Sample> MetricsToSamples(const EngineMetrics& metrics,
                                          const std::string& instance,
                                          const Snapshot& snapshot) {
  // The storage label distinguishes f32 from int8-serving engines in one
  // scrape, so throughput/latency series can be compared per tier.
  const obs::Labels labels = {
      {"engine", instance},
      {"storage", StorageKindName(snapshot.manifest().storage)}};
  std::vector<obs::Sample> samples;
  auto counter = [&](const char* name, const char* help, uint64_t value) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kCounter;
    sample.labels = labels;
    sample.value = static_cast<double>(value);
    samples.push_back(std::move(sample));
  };
  auto histogram = [&](const char* name, const char* help,
                       const HistogramSnapshot& snapshot) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kHistogram;
    sample.labels = labels;
    sample.histogram = snapshot;
    samples.push_back(std::move(sample));
  };
  counter("ember_serve_submitted_total", "Requests accepted into the queue",
          metrics.submitted);
  counter("ember_serve_completed_total", "Requests answered with neighbors",
          metrics.completed);
  counter("ember_serve_rejected_total", "Requests refused at Submit",
          metrics.rejected);
  counter("ember_serve_throttled_total",
          "Requests refused by the per-tenant token bucket",
          metrics.throttled);
  counter("ember_serve_expired_total", "Requests shed before embedding",
          metrics.expired);
  counter("ember_serve_failed_total", "Requests failed with an error",
          metrics.failed);
  counter("ember_serve_deadline_misses_total",
          "Requests completed after their deadline", metrics.deadline_misses);
  counter("ember_serve_batches_total", "Micro-batches processed",
          metrics.batches);
  counter("ember_serve_retries_total", "Embed/reload retry attempts",
          metrics.retries);
  counter("ember_serve_fallbacks_total",
          "Requests answered by the degraded exact scan", metrics.fallbacks);
  counter("ember_serve_breaker_trips_total",
          "Circuit breaker open transitions", metrics.breaker_trips);
  counter("ember_serve_short_circuits_total",
          "Submits refused while the breaker was open",
          metrics.short_circuits);
  counter("ember_serve_reloads_total", "Successful hot snapshot swaps",
          metrics.reloads);
  counter("ember_serve_reload_failures_total", "Rejected snapshot reloads",
          metrics.reload_failures);
  counter("ember_serve_upserts_total", "Rows admitted to the delta tier",
          metrics.upserts);
  counter("ember_serve_deletes_total", "Tombstones published",
          metrics.deletes);
  counter("ember_serve_mutation_failures_total",
          "Upserts/deletes refused fail-closed", metrics.mutation_failures);
  counter("ember_serve_compactions_total",
          "Compacted bases hot-swapped in", metrics.compactions);
  counter("ember_serve_compaction_failures_total",
          "Compactions rolled back", metrics.compaction_failures);
  counter("ember_serve_absorbs_total",
          "HNSW delta absorptions published", metrics.absorbs);
  auto gauge = [&](const char* name, const char* help, double value) {
    obs::Sample sample;
    sample.name = name;
    sample.help = help;
    sample.kind = obs::MetricKind::kGauge;
    sample.labels = labels;
    sample.value = value;
    samples.push_back(std::move(sample));
  };
  gauge("ember_serve_health",
        "Engine health (0=serving 1=degraded 2=tripped 3=loading)",
        static_cast<double>(metrics.health));
  gauge("ember_serve_snapshot_load_micros",
        "Wall-clock load time of the serving snapshot",
        static_cast<double>(snapshot.load_micros()));
  gauge("ember_serve_snapshot_bytes_mapped",
        "Bytes mmap'ed by the serving snapshot (0 = heap-loaded)",
        static_cast<double>(snapshot.bytes_mapped()));
  histogram("ember_serve_queue_micros", "Submit to dequeue wait per request",
            metrics.queue_micros);
  histogram("ember_serve_embed_micros", "Vectorization time per batch",
            metrics.embed_micros);
  histogram("ember_serve_query_micros", "Index search time per batch",
            metrics.query_micros);
  histogram("ember_serve_mutate_micros",
            "Delta/tombstone application time per batch",
            metrics.mutate_micros);
  histogram("ember_serve_postprocess_micros",
            "Reply assembly / future completion time per batch",
            metrics.postprocess_micros);
  histogram("ember_serve_total_micros", "Submit to completion per request",
            metrics.total_micros);
  histogram("ember_serve_batch_size", "Live requests per processed batch",
            metrics.batch_size);
  // Per-tenant breakdown (DESIGN.md §16). Distinct metric families (the
  // tenant_ prefix) keep the engine-wide series above label-stable; tenant
  // rows only exist for tenant-aware traffic, so untenanted engines export
  // exactly the pre-PR10 sample set.
  for (const TenantCounters& tenant : metrics.tenants) {
    obs::Labels tenant_labels = labels;
    tenant_labels["tenant"] = tenant.tenant;
    auto tenant_counter = [&](const char* name, const char* help,
                              uint64_t value) {
      obs::Sample sample;
      sample.name = name;
      sample.help = help;
      sample.kind = obs::MetricKind::kCounter;
      sample.labels = tenant_labels;
      sample.value = static_cast<double>(value);
      samples.push_back(std::move(sample));
    };
    tenant_counter("ember_serve_tenant_submitted_total",
                   "Per-tenant requests accepted into the queue",
                   tenant.submitted);
    tenant_counter("ember_serve_tenant_completed_total",
                   "Per-tenant requests completed", tenant.completed);
    tenant_counter("ember_serve_tenant_throttled_total",
                   "Per-tenant requests refused by the token bucket",
                   tenant.throttled);
    tenant_counter("ember_serve_tenant_rejected_total",
                   "Per-tenant requests refused by backpressure",
                   tenant.rejected);
    tenant_counter("ember_serve_tenant_expired_total",
                   "Per-tenant requests shed past their deadline",
                   tenant.expired);
    tenant_counter("ember_serve_tenant_failed_total",
                   "Per-tenant requests failed with an error", tenant.failed);
    tenant_counter("ember_serve_tenant_deadline_misses_total",
                   "Per-tenant requests completed after their deadline",
                   tenant.deadline_misses);
    obs::Sample latency;
    latency.name = "ember_serve_tenant_total_micros";
    latency.help = "Per-tenant submit to completion latency";
    latency.kind = obs::MetricKind::kHistogram;
    latency.labels = tenant_labels;
    latency.histogram = tenant.total_micros;
    samples.push_back(std::move(latency));
  }
  return samples;
}

}  // namespace

const char* HealthName(Health health) {
  switch (health) {
    case Health::kServing:
      return "serving";
    case Health::kDegraded:
      return "degraded";
    case Health::kTripped:
      return "tripped";
    case Health::kLoading:
      return "loading";
  }
  return "unknown";
}

Status Engine::CheckModelCompatible(const SnapshotManifest& manifest,
                                    const embed::EmbeddingModel& model) {
  if (model.info().code != manifest.model_code) {
    return Status::InvalidArgument(
        "snapshot was built with model '" + manifest.model_code +
        "' but the engine embeds with '" + model.info().code + "'");
  }
  if (model.info().dim != manifest.dim && manifest.rows > 0) {
    return Status::InvalidArgument("snapshot/model dimensionality mismatch");
  }
  return Status::Ok();
}

Result<std::unique_ptr<Engine>> Engine::Create(
    Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
    const EngineOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("engine requires a query-side model");
  }
  Status compatible = CheckModelCompatible(snapshot.manifest(), *model);
  if (!compatible.ok()) return compatible;
  // Weight building is neither thread-safe nor cheap; force it here so the
  // workers (and every Submit) only ever see an initialized model.
  model->Initialize();
  return std::unique_ptr<Engine>(
      new Engine(std::move(snapshot), std::move(model), options));
}

Engine::Engine(Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
               const EngineOptions& options)
    : snapshot_(std::make_shared<const Snapshot>(std::move(snapshot))),
      model_(std::move(model)),
      options_(options),
      breaker_(options.breaker),
      admission_(options.quotas) {
  if (options_.live) {
    live_ = std::make_shared<stream::LiveCorpus>(snapshot_);
  }
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  options_.max_batch = std::max<size_t>(1, options_.max_batch);
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_wait_micros = std::max<int64_t>(0, options_.max_wait_micros);
  k_ = options_.k > 0 ? options_.k
                      : std::max<size_t>(1, snapshot_->manifest().default_k);
  static std::atomic<uint64_t> next_instance{0};
  instance_ = std::to_string(next_instance.fetch_add(1));
  collector_id_ = obs::Registry::Global().AddCollector(
      [this] {
        return MetricsToSamples(Metrics(), instance_, *this->snapshot());
      });
  collector_registered_.store(true, std::memory_order_release);
  workers_.reserve(options_.workers);
  for (size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() { Stop(); }

void Engine::Stop() {
  // Unregister the metrics collector first: RemoveCollector is a barrier
  // (the registry holds its mutex through every collection), so after this
  // returns no scrape can touch a dying engine.
  if (collector_registered_.exchange(false, std::memory_order_acq_rel)) {
    obs::Registry::Global().RemoveCollector(collector_id_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Result<std::future<Result<QueryReply>>> Engine::Submit(std::string record,
                                                       SteadyTime deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return Submit(std::move(record), opts);
}

Result<std::future<Result<QueryReply>>> Engine::Submit(
    std::string record, const SubmitOptions& opts) {
  Request request;
  request.record = std::move(record);
  request.deadline = opts.deadline;
  request.tenant = opts.tenant;
  std::future<Result<QueryReply>> future = request.promise.get_future();
  Status admitted = Enqueue(std::move(request), opts.admit_time);
  if (!admitted.ok()) return admitted;
  return future;
}

Result<std::future<Result<QueryReply>>> Engine::SubmitEmbedded(
    std::vector<float> embedding, SteadyTime deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return SubmitEmbedded(std::move(embedding), opts);
}

Result<std::future<Result<QueryReply>>> Engine::SubmitEmbedded(
    std::vector<float> embedding, const SubmitOptions& opts) {
  if (embedding.size() != model_->info().dim) {
    return Status::InvalidArgument(
        "pre-embedded query has dim " + std::to_string(embedding.size()) +
        " but the engine's model produces dim " +
        std::to_string(model_->info().dim));
  }
  Request request;
  request.embedding = std::move(embedding);
  request.pre_embedded = true;
  request.deadline = opts.deadline;
  request.tenant = opts.tenant;
  std::future<Result<QueryReply>> future = request.promise.get_future();
  Status admitted = Enqueue(std::move(request), opts.admit_time);
  if (!admitted.ok()) return admitted;
  return future;
}

Result<std::future<Result<MutateReply>>> Engine::Upsert(std::string record,
                                                        SteadyTime deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return Upsert(std::move(record), opts);
}

Result<std::future<Result<MutateReply>>> Engine::Upsert(
    std::string record, const SubmitOptions& opts) {
  Request request;
  request.kind = Request::Kind::kUpsert;
  request.record = std::move(record);
  request.deadline = opts.deadline;
  request.tenant = opts.tenant;
  return EnqueueMutation(std::move(request), opts.admit_time);
}

Result<std::future<Result<MutateReply>>> Engine::UpsertEmbedded(
    std::vector<float> embedding, SteadyTime deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return UpsertEmbedded(std::move(embedding), opts);
}

Result<std::future<Result<MutateReply>>> Engine::UpsertEmbedded(
    std::vector<float> embedding, const SubmitOptions& opts) {
  if (embedding.size() != model_->info().dim) {
    return Status::InvalidArgument(
        "pre-embedded upsert has dim " + std::to_string(embedding.size()) +
        " but the engine's model produces dim " +
        std::to_string(model_->info().dim));
  }
  Request request;
  request.kind = Request::Kind::kUpsert;
  request.embedding = std::move(embedding);
  request.pre_embedded = true;
  request.deadline = opts.deadline;
  request.tenant = opts.tenant;
  return EnqueueMutation(std::move(request), opts.admit_time);
}

Result<std::future<Result<MutateReply>>> Engine::Delete(uint64_t global_id,
                                                        SteadyTime deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return Delete(global_id, opts);
}

Result<std::future<Result<MutateReply>>> Engine::Delete(
    uint64_t global_id, const SubmitOptions& opts) {
  Request request;
  request.kind = Request::Kind::kDelete;
  request.delete_id = global_id;
  // Deletes carry no record to embed; mark pre-embedded so the embed stage
  // skips them.
  request.pre_embedded = true;
  request.deadline = opts.deadline;
  request.tenant = opts.tenant;
  return EnqueueMutation(std::move(request), opts.admit_time);
}

Result<std::future<Result<MutateReply>>> Engine::EnqueueMutation(
    Request request, SteadyTime admit_time) {
  if (live_ == nullptr) {
    return Status::InvalidArgument(
        "engine serves a frozen snapshot (EngineOptions.live = false); "
        "mutations need a live corpus");
  }
  std::future<Result<MutateReply>> future =
      request.mutate_promise.get_future();
  Status admitted = Enqueue(std::move(request), admit_time);
  if (!admitted.ok()) return admitted;
  return future;
}

Status Engine::Enqueue(Request request, SteadyTime admit_time) {
  // Token-bucket admission FIRST (DESIGN.md §16), before the breaker and
  // the queue bound: an over-quota tenant's verdict depends only on the
  // quota and the admit timestamps — never on engine health or queue depth
  // — so a replayed trace reproduces the same throttle decisions exactly.
  // The caller-supplied admit_time (kAdmitNow = the real clock) is what
  // makes virtual-time replay clock-independent.
  const std::string tenant = request.tenant;
  const bool tracked = admission_.enabled() || !tenant.empty();
  if (admission_.enabled()) {
    obs::Span admit_span("serve/admit");
    const SteadyTime now = admit_time == kAdmitNow ? SteadyNow() : admit_time;
    Status admitted = admission_.Admit(tenant, now);
    if (!admitted.ok()) {
      throttled_.fetch_add(1, std::memory_order_relaxed);
      ledger_.Record(tenant, TenantLedger::Event::kThrottled);
      return admitted;
    }
  }
  // Breaker fast-fail outside the queue lock: while the embed/query stages
  // are known-broken, shedding here keeps the queue from filling with work
  // that would only be failed milliseconds later.
  if (!breaker_.Allow(SteadyNow())) {
    short_circuits_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("circuit breaker open");
  }
  request.enqueued = SteadyNow();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (tracked) ledger_.Record(tenant, TenantLedger::Event::kRejected);
      return Status::Unavailable("engine is stopped");
    }
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (tracked) ledger_.Record(tenant, TenantLedger::Event::kRejected);
      return Status::Unavailable("queue full (" +
                                 std::to_string(options_.max_queue) + ")");
    }
    request.seq = queue_seq_++;
    queue_.push_back(std::move(request));
    std::push_heap(queue_.begin(), queue_.end(),
                   RequestUrgency{options_.queue_policy});
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (tracked) ledger_.Record(tenant, TenantLedger::Event::kSubmitted);
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

void Engine::FailRequest(Request& request, const Status& status) {
  if (request.kind == Request::Kind::kQuery) {
    request.promise.set_value(status);
  } else {
    request.mutate_promise.set_value(status);
  }
}

void Engine::WorkerLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;  // drained: stop only once the queue is empty
        continue;
      }
      // Micro-batch window: drain as soon as max_batch requests are ready,
      // or once the MOST URGENT queued request (heap front: earliest
      // deadline under kEdf, oldest arrival under kFifo or with no
      // deadlines) has waited out max_wait_micros. wait_until releases the
      // lock, so another worker may drain the queue meanwhile — hence the
      // re-check below instead of assuming front().
      const SteadyTime window_end =
          AfterMicros(queue_.front().enqueued, options_.max_wait_micros);
      queue_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= options_.max_batch;
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Heap pops drain in urgency order, so the batch itself is ordered
      // most-urgent-first (and therefore in arrival order when deadlines
      // are absent or equal — mutations still apply in submission order).
      const RequestUrgency urgency{options_.queue_policy};
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        std::pop_heap(queue_.begin(), queue_.end(), urgency);
        batch.push_back(std::move(queue_.back()));
        queue_.pop_back();
      }
    }
    ProcessBatch(std::move(batch));
  }
}

void Engine::ProcessBatch(std::vector<Request> batch) {
  const SteadyTime drained = SteadyNow();
  const uint64_t batch_no = batches_.fetch_add(1, std::memory_order_relaxed);

  // Per-tenant accounting mirrors the engine-wide counters for tenant-aware
  // traffic; untenanted engines (no quotas, no tenant names) skip the
  // ledger entirely.
  auto tenant_event = [this](const Request& request,
                             TenantLedger::Event event) {
    if (admission_.enabled() || !request.tenant.empty()) {
      ledger_.Record(request.tenant, event);
    }
  };

  // Trace root per batch, keyed by the batch number: span ids depend on
  // (batch_no, stage name, stage order) only, so a fixed-seed run yields
  // the same span tree at any worker/thread count.
  obs::Span batch_span("serve/batch", obs::Span::RootTag{}, batch_no);
  batch_span.AddCount("requests", batch.size());

  // Deadline shedding BEFORE the expensive embed: a request that already
  // missed its deadline gets its status immediately and costs no compute.
  std::vector<Request> live;
  live.reserve(batch.size());
  {
    obs::Span shed_span("serve/dequeue_shed");
    for (Request& request : batch) {
      queue_micros_.Record(MicrosBetween(request.enqueued, drained));
      if (request.deadline < drained) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(request, TenantLedger::Event::kExpired);
        FailRequest(request, Status::DeadlineExceeded("shed before embedding"));
      } else {
        live.push_back(std::move(request));
      }
    }
  }
  if (live.empty()) return;
  batch_span.AddCount("live", live.size());
  batch_size_.Record(static_cast<double>(live.size()));

  // Pin the snapshot for the whole batch: a concurrent ReloadSnapshot may
  // swap the engine past it, but this batch's queries all answer from one
  // coherent corpus.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const size_t k = k_.load(std::memory_order_relaxed);

  // A batch can mix Submit records with SubmitEmbedded vectors (the Router
  // fan-out path) and, in live mode, upserts and deletes: only the records
  // go through the model — upserted records ride the same embed stage as
  // queries; pre-embedded rows are copied into their slots and pay no embed
  // cost; deletes carry no vector at all. An all-pre-embedded batch never
  // evaluates the engine/embed failpoint, because nothing fallible runs
  // (embed faults belong to whoever embedded).
  std::vector<std::string> sentences;
  std::vector<size_t> embed_slots;
  std::vector<size_t> query_slots;
  bool has_mutations = false;
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i].kind == Request::Kind::kQuery) {
      query_slots.push_back(i);
    } else {
      has_mutations = true;
    }
    if (live[i].pre_embedded) continue;
    embed_slots.push_back(i);
    sentences.push_back(live[i].record);
  }

  // Embed stage, under the retry policy. VectorizeAll itself cannot fail
  // (pure compute), so the fallible part is the boundary the failpoint
  // models: upstream tokenizer/model-server hiccups.
  WallTimer timer;
  la::Matrix vectors(live.size(), model_->info().dim);
  uint64_t embed_retries = 0;
  Status embedded = Status::Ok();
  {
    obs::Span embed_span("serve/embed");
    if (!embed_slots.empty()) {
      la::Matrix fresh;
      embedded = RetryStatus(
          options_.embed_retry, batch_no,
          [&] {
            Status injected = fail::Check("engine/embed");
            if (!injected.ok()) return injected;
            fresh = model_->VectorizeAll(sentences);
            return Status::Ok();
          },
          &embed_retries);
      if (embedded.ok()) {
        for (size_t slot = 0; slot < embed_slots.size(); ++slot) {
          std::memcpy(vectors.Row(embed_slots[slot]), fresh.Row(slot),
                      vectors.cols() * sizeof(float));
        }
      }
    }
    for (size_t i = 0; i < live.size(); ++i) {
      if (!live[i].pre_embedded || live[i].embedding.empty()) continue;
      std::memcpy(vectors.Row(i), live[i].embedding.data(),
                  vectors.cols() * sizeof(float));
    }
    embed_span.AddCount("retries", embed_retries);
  }
  retries_.fetch_add(embed_retries, std::memory_order_relaxed);
  embed_micros_.Record(timer.Restart() * 1e6);
  if (!embedded.ok()) {
    // Permanent embed failure: feed the breaker first (so the trip is
    // visible by the time waiters observe their error), then fail the
    // batch loudly — never silently drop it.
    breaker_.RecordFailure(SteadyNow());
    failed_.fetch_add(live.size(), std::memory_order_relaxed);
    for (Request& request : live) {
      tenant_event(request, TenantLedger::Event::kFailed);
      FailRequest(request, embedded);
    }
    EMBER_WARN("embed stage failed after %llu retries: %s",
               static_cast<unsigned long long>(embed_retries),
               embedded.ToString().c_str());
    return;
  }

  // Mutation stage (live mode): apply the batch's upserts and deletes to
  // the live corpus in arrival order, BEFORE the batch's queries run, so a
  // client that upserted then queried observes its own write even inside
  // one batch window. Each mutation succeeds or fails individually — an
  // injected delta/tombstone fault refuses that one request fail-closed and
  // never feeds the circuit breaker (the serving path is healthy; only the
  // mutation was refused).
  std::vector<Result<MutateReply>> mutate_results(
      has_mutations ? live.size() : 0, Status::Internal("not a mutation"));
  if (has_mutations) {
    obs::Span mutate_span("serve/mutate");
    uint64_t applied = 0;
    uint64_t refused = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      Request& request = live[i];
      if (request.kind == Request::Kind::kUpsert) {
        Result<uint64_t> id = live_->Upsert(vectors.Row(i), vectors.cols());
        if (id.ok()) {
          mutate_results[i] = MutateReply{id.value()};
          upserts_.fetch_add(1, std::memory_order_relaxed);
          ++applied;
        } else {
          mutate_results[i] = id.status();
          mutation_failures_.fetch_add(1, std::memory_order_relaxed);
          ++refused;
        }
      } else if (request.kind == Request::Kind::kDelete) {
        Status deleted = live_->Delete(request.delete_id);
        if (deleted.ok()) {
          mutate_results[i] = MutateReply{request.delete_id};
          deletes_.fetch_add(1, std::memory_order_relaxed);
          ++applied;
        } else {
          mutate_results[i] = std::move(deleted);
          mutation_failures_.fetch_add(1, std::memory_order_relaxed);
          ++refused;
        }
      }
    }
    mutate_span.AddCount("applied", applied);
    mutate_span.AddCount("refused", refused);
    mutate_micros_.Record(timer.Restart() * 1e6);
  }

  // Query stage, over the batch's query subset. A failing primary index
  // degrades to the exact brute-force scan of the same corpus
  // (options_.allow_degraded) instead of failing the batch: availability
  // first, and for exact snapshots the fallback is bit-identical anyway.
  // In live mode both paths answer through the corpus's merged
  // base+delta−tombstones view.
  std::vector<std::vector<index::Neighbor>> neighbors;
  bool via_fallback = false;
  if (!query_slots.empty()) {
    // Mutations in the batch leave holes in `vectors`; queries run on the
    // compacted query-row matrix. A mutation-free batch skips the copy.
    la::Matrix query_vectors;
    const la::Matrix* query_rows = &vectors;
    if (query_slots.size() != live.size()) {
      query_vectors = la::Matrix(query_slots.size(), vectors.cols());
      for (size_t slot = 0; slot < query_slots.size(); ++slot) {
        std::memcpy(query_vectors.Row(slot), vectors.Row(query_slots[slot]),
                    vectors.cols() * sizeof(float));
      }
      query_rows = &query_vectors;
    }
    obs::Span query_span("serve/query");
    const Status query_fault = fail::Check("engine/query");
    if (query_fault.ok()) {
      neighbors = live_ != nullptr ? live_->QueryBatch(*query_rows, k)
                                   : snap->QueryBatch(*query_rows, k);
    } else if (options_.allow_degraded) {
      neighbors = live_ != nullptr
                      ? live_->FallbackQueryBatch(*query_rows, k)
                      : snap->FallbackQueryBatch(*query_rows, k);
      via_fallback = true;
      fallbacks_.fetch_add(query_slots.size(), std::memory_order_relaxed);
      EMBER_WARN("primary index query failed (%s); served by exact fallback",
                 query_fault.ToString().c_str());
    } else {
      // The query stage failed permanently: fail the queries, but deliver
      // the mutation outcomes — those already applied and must not be
      // reported lost.
      breaker_.RecordFailure(SteadyNow());
      for (size_t i = 0; i < live.size(); ++i) {
        if (live[i].kind == Request::Kind::kQuery) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          tenant_event(live[i], TenantLedger::Event::kFailed);
          live[i].promise.set_value(query_fault);
        } else if (mutate_results[i].ok()) {
          completed_.fetch_add(1, std::memory_order_relaxed);
          tenant_event(live[i], TenantLedger::Event::kCompleted);
          live[i].mutate_promise.set_value(std::move(mutate_results[i]));
        } else {
          failed_.fetch_add(1, std::memory_order_relaxed);
          tenant_event(live[i], TenantLedger::Event::kFailed);
          live[i].mutate_promise.set_value(std::move(mutate_results[i]));
        }
      }
      return;
    }
    degraded_.store(via_fallback, std::memory_order_relaxed);
    query_micros_.Record(timer.Restart() * 1e6);
  }

  const SteadyTime done = SteadyNow();
  breaker_.RecordSuccess(done);
  {
    obs::Span complete_span("serve/complete");
    size_t query_slot = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      if (live[i].deadline < done) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(live[i], TenantLedger::Event::kDeadlineMiss);
      }
      const int64_t latency = MicrosBetween(live[i].enqueued, done);
      total_micros_.Record(latency);
      if (admission_.enabled() || !live[i].tenant.empty()) {
        ledger_.RecordLatency(live[i].tenant, static_cast<double>(latency));
      }
      // The request's own span runs from enqueue (client thread) to
      // completion (this worker) — an explicit-timestamp emit, parented
      // under the batch and keyed by the in-batch slot.
      obs::EmitSpan("serve/request", batch_span.context(), i,
                    live[i].enqueued, done);
      if (live[i].kind == Request::Kind::kQuery) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(live[i], TenantLedger::Event::kCompleted);
        live[i].promise.set_value(
            QueryReply{std::move(neighbors[query_slot++])});
      } else if (mutate_results[i].ok()) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(live[i], TenantLedger::Event::kCompleted);
        live[i].mutate_promise.set_value(std::move(mutate_results[i]));
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        tenant_event(live[i], TenantLedger::Event::kFailed);
        live[i].mutate_promise.set_value(std::move(mutate_results[i]));
      }
    }
  }
  postprocess_micros_.Record(timer.Seconds() * 1e6);
}

Result<std::shared_ptr<const Snapshot>> Engine::LoadValidated(
    const std::string& path, const RetryPolicy& policy) {
  uint64_t load_retries = 0;
  // Note: the paranoid LoadOptions default (full checksum verification) is
  // deliberate and non-negotiable here — this is the gate every hot swap
  // (reload AND compaction commit) passes through, and trusted mode is only
  // for cold starts on already-verified files.
  Result<Snapshot> loaded =
      Snapshot::LoadWithRetry(path, policy, &load_retries);
  retries_.fetch_add(load_retries, std::memory_order_relaxed);
  Status status = loaded.status();
  if (status.ok()) {
    status = CheckModelCompatible(loaded.value().manifest(), *model_);
  }
  if (status.ok()) status = loaded.value().Validate();
  if (!status.ok()) return status;

  auto fresh = std::make_shared<const Snapshot>(std::move(loaded.value()));

  // Warm probe: run a real query over a few corpus rows BEFORE the swap, so
  // the first production batch on the new snapshot pays no cold-start cost
  // and a snapshot whose index crashes on use never goes live.
  const la::Matrix& corpus = fresh->data();
  const size_t probe_rows = std::min<size_t>(4, corpus.rows());
  if (probe_rows > 0) {
    la::Matrix probe(probe_rows, corpus.cols());
    std::memcpy(probe.data(), corpus.data(),
                probe_rows * corpus.cols() * sizeof(float));
    const size_t probe_k =
        std::min<size_t>(k_.load(std::memory_order_relaxed), corpus.rows());
    const auto warm = fresh->QueryBatch(probe, std::max<size_t>(1, probe_k));
    if (warm.size() != probe_rows) {
      return Status::Internal("snapshot swap: warm probe returned " +
                              std::to_string(warm.size()) + " results for " +
                              std::to_string(probe_rows) + " queries");
    }
  }
  return fresh;
}

Status Engine::ReloadSnapshot(const std::string& path,
                              const RetryPolicy& policy) {
  // One reload at a time; serving continues on the old snapshot throughout.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  reloading_.store(true, std::memory_order_release);
  struct ClearLoading {
    std::atomic<bool>& flag;
    ~ClearLoading() { flag.store(false, std::memory_order_release); }
  } clear_loading{reloading_};

  Result<std::shared_ptr<const Snapshot>> fresh = LoadValidated(path, policy);
  if (!fresh.ok()) {
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    EMBER_WARN("snapshot reload from '%s' rejected (still serving the old "
               "snapshot): %s",
               path.c_str(), fresh.status().ToString().c_str());
    return fresh.status();
  }

  if (live_ != nullptr) {
    // A live corpus cannot adopt an arbitrary replacement — the delta and
    // tombstone overlay is only meaningful against a base with the same row
    // identity. ReplaceBase enforces that and refuses anything else.
    Status replaced = live_->ReplaceBase(std::move(fresh).value());
    if (!replaced.ok()) {
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      EMBER_WARN("live snapshot reload from '%s' rejected: %s", path.c_str(),
                 replaced.ToString().c_str());
      return replaced;
    }
  } else {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh).value();
    if (options_.k == 0) {
      k_.store(std::max<size_t>(1, snapshot_->manifest().default_k),
               std::memory_order_relaxed);
    }
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Engine::Compact(const std::string& path, ResyncState* resync) {
  if (live_ == nullptr) {
    return Status::InvalidArgument("compaction needs a live engine");
  }
  // One compaction/absorb at a time; serving (including mutations) continues
  // on the current tiers throughout.
  std::lock_guard<std::mutex> compaction_lock(compaction_mu_);

  // Phase 1: capture the plan and write the merged base+delta−tombstones
  // snapshot. Failure here costs only the attempt — nothing was published.
  Status wrote = [&]() -> Status {
    EMBER_FAILPOINT("compaction/write");
    stream::CompactionPlan plan = live_->PlanCompaction();
    SnapshotManifest manifest = plan.manifest;
    const bool quantized = manifest.storage == StorageKind::kInt8;
    manifest.storage = StorageKind::kFloat32;
    // The rebuilt base records the mutation position it covers, so a
    // replica adopting it for resync knows where log replay must resume.
    manifest.mutation_seq = plan.upto_seq;
    index::HnswOptions hnsw_options;
    index::LshOptions lsh_options;
    if (manifest.kind == IndexKind::kHnsw) {
      hnsw_options = live_->base()->hnsw_options();
    } else if (manifest.kind == IndexKind::kLsh) {
      // The hyperplanes derive deterministically from the carried seed, so
      // rebuilding with the base's own options reproduces the tables
      // faithfully over the merged rows.
      lsh_options = live_->base()->lsh_options();
    }
    Snapshot merged = Snapshot::Build(manifest, std::move(plan.corpus),
                                      hnsw_options, lsh_options);
    if (quantized) {
      Status requantized = merged.Quantize();
      if (!requantized.ok()) return requantized;
    }
    Status saved = merged.SaveTo(path);
    if (!saved.ok()) return saved;
    // Phase 2: trust pipeline + atomic install. The file on disk is
    // re-loaded through the exact same gate as a hot reload (checksums,
    // model compat, Validate, warm probe) — the compactor's own output gets
    // zero trust. InstallCompacted then swaps base + truncates the covered
    // delta prefix + drops folded tombstones under one lock, and refuses
    // stale plans (a concurrent absorb swapped the base first).
    EMBER_FAILPOINT("compaction/swap");
    Result<std::shared_ptr<const Snapshot>> fresh =
        LoadValidated(path, RetryPolicy{});
    if (!fresh.ok()) return fresh.status();
    Status installed = live_->InstallCompacted(std::move(fresh).value(), plan);
    if (installed.ok() && resync != nullptr) {
      resync->ids = std::move(plan.survivor_ids);
      resync->next_id = plan.next_id;
      resync->upto_seq = plan.upto_seq;
    }
    return installed;
  }();
  if (!wrote.ok()) {
    compaction_failures_.fetch_add(1, std::memory_order_relaxed);
    std::remove(path.c_str());  // never leave a half-written/untrusted base
    EMBER_WARN("compaction to '%s' rolled back (old base keeps serving): %s",
               path.c_str(), wrote.ToString().c_str());
    return wrote;
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Engine::AbsorbDelta() {
  if (live_ == nullptr) {
    return Status::InvalidArgument("delta absorption needs a live engine");
  }
  std::lock_guard<std::mutex> compaction_lock(compaction_mu_);
  Status absorbed = live_->AbsorbDelta();
  if (!absorbed.ok()) {
    compaction_failures_.fetch_add(1, std::memory_order_relaxed);
    return absorbed;
  }
  absorbs_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Engine::ResyncFrom(const std::string& path, std::vector<uint64_t> ids,
                          uint64_t next_id) {
  if (live_ == nullptr) {
    return Status::InvalidArgument("resync needs a live engine");
  }
  std::lock_guard<std::mutex> compaction_lock(compaction_mu_);
  // Zero trust in the donor's file: the same gate as a hot reload.
  Result<std::shared_ptr<const Snapshot>> fresh =
      LoadValidated(path, RetryPolicy{});
  if (!fresh.ok()) return fresh.status();
  Status adopted =
      live_->AdoptBase(std::move(fresh).value(), std::move(ids), next_id);
  if (!adopted.ok()) {
    EMBER_WARN("resync from '%s' rejected (old tiers keep serving): %s",
               path.c_str(), adopted.ToString().c_str());
    return adopted;
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<recover::CorpusDigest> Engine::Digest() const {
  EMBER_FAILPOINT("recover/digest");
  if (live_ != nullptr) return live_->Digest();
  // Frozen engine: the corpus only changes via ReloadSnapshot, so compute
  // once per served snapshot and serve the cache until the pointer moves.
  std::shared_ptr<const Snapshot> current = snapshot();
  std::lock_guard<std::mutex> lock(digest_mu_);
  if (digest_snapshot_ == current) return digest_cache_;
  recover::CorpusDigest digest;
  const la::Matrix& corpus = current->data();
  digest.rows = corpus.rows();
  for (size_t local = 0; local < corpus.rows(); ++local) {
    digest.content +=
        recover::RowHash(local, corpus.Row(local), corpus.cols());
  }
  digest_snapshot_ = std::move(current);
  digest_cache_ = digest;
  return digest;
}

stream::LiveStats Engine::LiveStats() const {
  return live_ != nullptr ? live_->Stats() : stream::LiveStats{};
}

Health Engine::health() const {
  if (reloading_.load(std::memory_order_acquire)) return Health::kLoading;
  if (breaker_.state() != CircuitBreaker::State::kClosed) {
    return Health::kTripped;
  }
  if (degraded_.load(std::memory_order_relaxed)) return Health::kDegraded;
  return Health::kServing;
}

std::shared_ptr<const Snapshot> Engine::snapshot() const {
  // Live mode: the corpus owns the serving base (compaction and absorption
  // swap it underneath the engine's original snapshot_).
  if (live_ != nullptr) return live_->base();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

EngineMetrics Engine::Metrics() const {
  EngineMetrics metrics;
  metrics.submitted = submitted_.load(std::memory_order_relaxed);
  metrics.completed = completed_.load(std::memory_order_relaxed);
  metrics.rejected = rejected_.load(std::memory_order_relaxed);
  metrics.throttled = throttled_.load(std::memory_order_relaxed);
  metrics.expired = expired_.load(std::memory_order_relaxed);
  metrics.failed = failed_.load(std::memory_order_relaxed);
  metrics.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  metrics.batches = batches_.load(std::memory_order_relaxed);
  metrics.health = health();
  metrics.retries = retries_.load(std::memory_order_relaxed);
  metrics.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  metrics.breaker_trips = breaker_.trips();
  metrics.short_circuits = short_circuits_.load(std::memory_order_relaxed);
  metrics.reloads = reloads_.load(std::memory_order_relaxed);
  metrics.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  metrics.upserts = upserts_.load(std::memory_order_relaxed);
  metrics.deletes = deletes_.load(std::memory_order_relaxed);
  metrics.mutation_failures =
      mutation_failures_.load(std::memory_order_relaxed);
  metrics.compactions = compactions_.load(std::memory_order_relaxed);
  metrics.compaction_failures =
      compaction_failures_.load(std::memory_order_relaxed);
  metrics.absorbs = absorbs_.load(std::memory_order_relaxed);
  metrics.queue_micros = queue_micros_.Snapshot();
  metrics.embed_micros = embed_micros_.Snapshot();
  metrics.query_micros = query_micros_.Snapshot();
  metrics.mutate_micros = mutate_micros_.Snapshot();
  metrics.postprocess_micros = postprocess_micros_.Snapshot();
  metrics.total_micros = total_micros_.Snapshot();
  metrics.batch_size = batch_size_.Snapshot();
  metrics.tenants = ledger_.Snapshot();
  return metrics;
}

}  // namespace ember::serve
