#include "serve/circuit_breaker.h"

#include <algorithm>

#include "common/logging.h"

namespace ember::serve {

CircuitBreaker::CircuitBreaker(const BreakerOptions& options)
    : options_([&] {
        BreakerOptions clamped = options;
        clamped.window = std::max<size_t>(1, clamped.window);
        clamped.min_samples =
            std::max<size_t>(1, std::min(clamped.min_samples, clamped.window));
        clamped.trip_ratio = std::clamp(clamped.trip_ratio, 0.0, 1.0);
        clamped.half_open_successes =
            std::max<size_t>(1, clamped.half_open_successes);
        return clamped;
      }()) {
  ring_.assign(options_.window, 0);
}

bool CircuitBreaker::Allow(SteadyTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (MicrosBetween(opened_at_, now) >= options_.open_micros) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(SteadyTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      PushOutcomeLocked(/*failure=*/false, now);
      break;
    case State::kHalfOpen:
      if (++probe_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        ResetWindowLocked();
      }
      break;
    case State::kOpen:
      // A batch that was in flight when the breaker opened; stale, ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure(SteadyTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      PushOutcomeLocked(/*failure=*/true, now);
      break;
    case State::kHalfOpen:
      TripLocked(now);  // failed probe: reopen, restart the cool-down
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

void CircuitBreaker::TripLocked(SteadyTime now) {
  state_ = State::kOpen;
  opened_at_ = now;
  ++trips_;
  probe_successes_ = 0;
  ResetWindowLocked();
  EMBER_WARN("circuit breaker opened (trip #%llu)",
             static_cast<unsigned long long>(trips_));
}

void CircuitBreaker::ResetWindowLocked() {
  std::fill(ring_.begin(), ring_.end(), 0);
  ring_pos_ = 0;
  ring_count_ = 0;
  ring_failures_ = 0;
}

void CircuitBreaker::PushOutcomeLocked(bool failure, SteadyTime now) {
  if (ring_count_ < ring_.size()) {
    ++ring_count_;
  } else {
    ring_failures_ -= ring_[ring_pos_];
  }
  ring_[ring_pos_] = failure ? 1 : 0;
  ring_failures_ += ring_[ring_pos_];
  ring_pos_ = (ring_pos_ + 1) % ring_.size();
  if (ring_failures_ > 0 && ring_count_ >= options_.min_samples &&
      static_cast<double>(ring_failures_) >=
          options_.trip_ratio * static_cast<double>(ring_count_)) {
    TripLocked(now);
  }
}

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace ember::serve
