#ifndef EMBER_SERVE_ENGINE_H_
#define EMBER_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/timer.h"
#include "embed/embedding_model.h"
#include "index/neighbor.h"
#include "serve/snapshot.h"

namespace ember::serve {

struct EngineOptions {
  /// Per-query neighbor count; 0 uses the snapshot manifest's default_k.
  size_t k = 0;
  /// Bounded queue capacity. A full queue REJECTS new submissions
  /// immediately (backpressure) — Submit never blocks the caller.
  size_t max_queue = 1024;
  /// Batching policy: a worker drains as soon as `max_batch` requests are
  /// queued, or when the oldest queued request has waited `max_wait_micros`,
  /// whichever comes first. Larger windows amortize the embed/query batch
  /// cost; smaller windows cut tail latency at low load.
  size_t max_batch = 32;
  int64_t max_wait_micros = 2000;
  /// Batcher threads. Each drains whole batches, so >1 mainly helps when
  /// embedding and index search can overlap on spare cores.
  size_t workers = 1;
};

/// A completed query: top-k corpus neighbors of the submitted record.
struct QueryReply {
  std::vector<index::Neighbor> neighbors;
};

/// Monotone counters + latency histograms, readable at any time. Counter
/// identity: submitted == completed + expired + still-in-flight (rejected
/// submissions are counted separately and never enter the queue).
struct EngineMetrics {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t completed = 0;  // future fulfilled with neighbors
  uint64_t rejected = 0;   // refused at Submit (queue full / stopped)
  uint64_t expired = 0;    // shed before embedding (deadline passed)
  uint64_t deadline_misses = 0;  // completed, but after their deadline
  uint64_t batches = 0;

  HistogramSnapshot queue_micros;  // submit -> drained from the queue
  HistogramSnapshot embed_micros;  // per batch: vectorization
  HistogramSnapshot query_micros;  // per batch: index search
  HistogramSnapshot total_micros;  // submit -> future completed
  HistogramSnapshot batch_size;    // live requests per processed batch
};

/// Long-lived online ER query engine in the inference-server style:
/// producers Submit() single records with optional deadlines into a bounded
/// MPMC queue; worker threads drain it under the max-batch/max-wait policy,
/// vectorize each batch through the model's parallel VectorizeAll, run one
/// QueryBatch against the snapshot, and complete the futures.
///
/// Determinism caveat (DESIGN.md §9): batch composition varies under load,
/// but per-request results never do — each embedding row depends only on
/// its own record and each query only on the frozen index, so a record
/// returns the same neighbors whether it shared a batch or rode alone.
class Engine {
 public:
  /// Takes ownership of the snapshot and shares the query-side model
  /// (Initialize() is forced here, before any worker can race it). Fails
  /// with InvalidArgument when the model's code/dim disagree with the
  /// snapshot manifest. Workers start immediately on success.
  static Result<std::unique_ptr<Engine>> Create(
      Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
      const EngineOptions& options);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Non-blocking submit of one record. On acceptance returns the future
  /// that will carry the top-k neighbors (or DeadlineExceeded if shed);
  /// when the queue is full or the engine is stopped it returns
  /// Unavailable immediately — backpressure is reported, never dropped.
  Result<std::future<Result<QueryReply>>> Submit(
      std::string record, SteadyTime deadline = kNoDeadline);

  /// Stops accepting new work, drains every queued request (expired ones
  /// are shed, the rest are answered), and joins the workers. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// Point-in-time metrics (concurrent-safe; counters are monotone).
  EngineMetrics Metrics() const;

  const Snapshot& snapshot() const { return snapshot_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct Request {
    std::string record;
    SteadyTime deadline;
    SteadyTime enqueued;
    std::promise<Result<QueryReply>> promise;
  };

  Engine(Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
         const EngineOptions& options);

  void WorkerLoop();
  void ProcessBatch(std::vector<Request> batch);

  Snapshot snapshot_;
  std::shared_ptr<embed::EmbeddingModel> model_;
  EngineOptions options_;
  size_t k_ = 10;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Counters are atomics (not guarded by mu_): Metrics() must stay cheap
  // enough to call from a live load generator.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> batches_{0};
  LatencyHistogram queue_micros_;
  LatencyHistogram embed_micros_;
  LatencyHistogram query_micros_;
  LatencyHistogram total_micros_;
  LatencyHistogram batch_size_;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_ENGINE_H_
