#ifndef EMBER_SERVE_ENGINE_H_
#define EMBER_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/timer.h"
#include "embed/embedding_model.h"
#include "index/neighbor.h"
#include "recover/digest.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/snapshot.h"
#include "stream/live_corpus.h"

namespace ember::serve {

/// Coarse engine health, surfaced in EngineMetrics (DESIGN.md §10):
///   kServing  — normal operation
///   kDegraded — last batch answered by the exact-scan fallback
///   kTripped  — circuit breaker open; Submits are short-circuited
///   kLoading  — a hot snapshot reload is validating/warming
enum class Health : uint32_t {
  kServing = 0,
  kDegraded = 1,
  kTripped = 2,
  kLoading = 3,
};

const char* HealthName(Health health);

struct EngineOptions {
  /// Per-query neighbor count; 0 uses the snapshot manifest's default_k.
  size_t k = 0;
  /// Bounded queue capacity. A full queue REJECTS new submissions
  /// immediately (backpressure) — Submit never blocks the caller.
  size_t max_queue = 1024;
  /// Batching policy: a worker drains as soon as `max_batch` requests are
  /// queued, or when the oldest queued request has waited `max_wait_micros`,
  /// whichever comes first. Larger windows amortize the embed/query batch
  /// cost; smaller windows cut tail latency at low load.
  size_t max_batch = 32;
  int64_t max_wait_micros = 2000;
  /// Batcher threads. Each drains whole batches, so >1 mainly helps when
  /// embedding and index search can overlap on spare cores.
  size_t workers = 1;
  /// Bounded attempts around the embed stage: transient failures back off
  /// (deterministic seeded jitter) and retry before the batch is failed.
  RetryPolicy embed_retry;
  /// Circuit breaker over batch outcomes: after `trip_ratio` of the recent
  /// window fails, Submit answers kUnavailable in O(1) instead of queueing
  /// doomed work behind a failing stage.
  BreakerOptions breaker;
  /// Degraded mode: when the primary index query stage fails, answer from
  /// an exact brute-force scan of the snapshot's corpus matrix instead of
  /// failing the batch. OFF fails the batch with the stage error.
  bool allow_degraded = true;
  /// Live corpus mode (DESIGN.md §14): wrap the snapshot in a
  /// stream::LiveCorpus so Upsert/Delete are accepted through the batcher
  /// and queries merge base + delta with tombstone filtering. OFF keeps the
  /// frozen-snapshot engine bit-for-bit unchanged.
  bool live = false;
  /// Queue drain order (DESIGN.md §16). kEdf drains the most urgent queued
  /// request first; deadline-free and equal-deadline requests keep arrival
  /// order, so a workload without deadlines behaves exactly like kFifo.
  QueuePolicy queue_policy = QueuePolicy::kEdf;
  /// Per-tenant admission quotas. Empty (the default) disables the token
  /// bucket gate entirely; tenants without a listed quota are never
  /// throttled.
  std::vector<TenantQuota> quotas;
};

/// A completed query: top-k corpus neighbors of the submitted record.
struct QueryReply {
  std::vector<index::Neighbor> neighbors;
};

/// A completed mutation: the global id the row was admitted (or deleted)
/// under.
struct MutateReply {
  uint64_t id = 0;
};

/// Donor-side coordinates of a compaction, handed to a resyncing replica
/// alongside the snapshot file (DESIGN.md §15): the ascending id map of the
/// compacted rows, the donor's id counter (so replayed upserts reproduce
/// its id assignments), and the donor-local mutation sequence the snapshot
/// covers. In-process hand-off today; a networked resync would ship this as
/// a sidecar next to the snapshot.
struct ResyncState {
  std::vector<uint64_t> ids;
  uint64_t next_id = 0;
  uint64_t upto_seq = 0;
};

/// Monotone counters + latency histograms, readable at any time. Counter
/// identity: submitted == completed + expired + failed + still-in-flight
/// (rejected and short_circuited submissions never enter the queue and are
/// counted separately; retries/fallbacks/trips are rate counters, not part
/// of the identity).
struct EngineMetrics {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t completed = 0;  // future fulfilled with neighbors
  uint64_t rejected = 0;   // refused at Submit (queue full / stopped)
  uint64_t throttled = 0;  // refused at Submit by the token bucket (PR 10)
  uint64_t expired = 0;    // shed before embedding (deadline passed)
  uint64_t failed = 0;     // future fulfilled with a non-deadline error
  uint64_t deadline_misses = 0;  // completed, but after their deadline
  uint64_t batches = 0;

  // Resilience counters (PR 4).
  Health health = Health::kServing;
  uint64_t retries = 0;          // embed attempts beyond each batch's first
  uint64_t fallbacks = 0;        // requests answered by the degraded scan
  uint64_t breaker_trips = 0;    // closed/half-open -> open transitions
  uint64_t short_circuits = 0;   // Submits refused fast while tripped
  uint64_t reloads = 0;          // successful hot snapshot swaps
  uint64_t reload_failures = 0;  // rejected reloads (old snapshot kept)

  // Streaming counters (PR 8). Upserts/deletes participate in the counter
  // identity above exactly like queries (submitted -> completed/expired/
  // failed); mutation_failures additionally breaks out the failed ones.
  uint64_t upserts = 0;              // mutations applied to the delta tier
  uint64_t deletes = 0;              // tombstones published
  uint64_t mutation_failures = 0;    // upserts/deletes refused fail-closed
  uint64_t compactions = 0;          // base rewrites hot-swapped in
  uint64_t compaction_failures = 0;  // compactions rolled back
  uint64_t absorbs = 0;              // HNSW delta absorptions published

  HistogramSnapshot queue_micros;  // submit -> drained from the queue
  HistogramSnapshot embed_micros;  // per batch: vectorization
  HistogramSnapshot query_micros;  // per batch: index search
  HistogramSnapshot mutate_micros;  // per batch: delta/tombstone application
  HistogramSnapshot postprocess_micros;  // per batch: reply assembly/futures
  HistogramSnapshot total_micros;  // submit -> future completed
  HistogramSnapshot batch_size;    // live requests per processed batch

  /// Per-tenant breakdown (PR 10), sorted by tenant name; the untenanted
  /// default path appears as tenant "default". Each tenant satisfies the
  /// same counter identity as the engine-wide counters above.
  std::vector<TenantCounters> tenants;
};

/// Long-lived online ER query engine in the inference-server style:
/// producers Submit() single records with optional deadlines into a bounded
/// MPMC queue; worker threads drain it under the max-batch/max-wait policy,
/// vectorize each batch through the model's parallel VectorizeAll, run one
/// QueryBatch against the snapshot, and complete the futures.
///
/// Resilience (DESIGN.md §10): the embed stage retries under
/// options.embed_retry; a circuit breaker trips on persistent batch
/// failures and short-circuits Submits; a failing primary index degrades to
/// the exact-scan fallback; and ReloadSnapshot swaps a validated + warmed
/// replacement under an RCU-style shared_ptr without dropping in-flight
/// queries.
///
/// Determinism caveat (DESIGN.md §9): batch composition varies under load,
/// but per-request results never do — each embedding row depends only on
/// its own record and each query only on the frozen index, so a record
/// returns the same neighbors whether it shared a batch or rode alone.
class Engine {
 public:
  /// Takes ownership of the snapshot and shares the query-side model
  /// (Initialize() is forced here, before any worker can race it). Fails
  /// with InvalidArgument when the model's code/dim disagree with the
  /// snapshot manifest. Workers start immediately on success.
  static Result<std::unique_ptr<Engine>> Create(
      Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
      const EngineOptions& options);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Non-blocking submit of one record. On acceptance returns the future
  /// that will carry the top-k neighbors (or DeadlineExceeded if shed);
  /// when the queue is full, the engine is stopped, or the circuit breaker
  /// is open it returns Unavailable immediately — backpressure and
  /// fail-fast are reported, never dropped.
  Result<std::future<Result<QueryReply>>> Submit(
      std::string record, SteadyTime deadline = kNoDeadline);

  /// Tenant-aware submit (DESIGN.md §16): same admission rules as Submit
  /// plus the per-tenant token bucket gate — an over-quota tenant gets
  /// Unavailable immediately without enqueueing, counted as throttled.
  Result<std::future<Result<QueryReply>>> Submit(std::string record,
                                                 const SubmitOptions& opts);

  /// Non-blocking submit of one already-embedded query vector — the sharded
  /// Router's fan-out path (DESIGN.md §13): the router embeds a record once
  /// and each shard engine skips its embed stage for that request. Same
  /// admission rules and reply semantics as Submit; fails with
  /// InvalidArgument when the vector's dimensionality does not match the
  /// engine's model.
  Result<std::future<Result<QueryReply>>> SubmitEmbedded(
      std::vector<float> embedding, SteadyTime deadline = kNoDeadline);

  Result<std::future<Result<QueryReply>>> SubmitEmbedded(
      std::vector<float> embedding, const SubmitOptions& opts);

  /// Live mode only: admits one record into the live corpus through the
  /// same micro-batcher as queries (embedded in the batch's embed stage,
  /// applied in arrival order before the batch's queries run). The future
  /// carries the global id the row was admitted under. Same admission rules
  /// as Submit; InvalidArgument when the engine is not live.
  Result<std::future<Result<MutateReply>>> Upsert(
      std::string record, SteadyTime deadline = kNoDeadline);

  Result<std::future<Result<MutateReply>>> Upsert(std::string record,
                                                  const SubmitOptions& opts);

  /// Pre-embedded upsert (the Router's mutation fan-out path).
  Result<std::future<Result<MutateReply>>> UpsertEmbedded(
      std::vector<float> embedding, SteadyTime deadline = kNoDeadline);

  Result<std::future<Result<MutateReply>>> UpsertEmbedded(
      std::vector<float> embedding, const SubmitOptions& opts);

  /// Live mode only: publishes a tombstone for `global_id` through the
  /// batcher. NotFound (via the future) when the id is unknown or already
  /// dead.
  Result<std::future<Result<MutateReply>>> Delete(
      uint64_t global_id, SteadyTime deadline = kNoDeadline);

  Result<std::future<Result<MutateReply>>> Delete(uint64_t global_id,
                                                  const SubmitOptions& opts);

  /// Live mode only: rewrites base + delta − tombstones into a merged
  /// EMBS0002 snapshot at `path` and hot-swaps it in as the new base via
  /// the same validate+warm pipeline as ReloadSnapshot. Serving continues
  /// throughout; on ANY failure (write, validation, install race) the old
  /// base + delta keep serving, the partial file is removed, and the error
  /// is returned. Serialized with other compactions and absorbs. When
  /// `resync` is non-null it receives the plan coordinates a sibling
  /// replica needs to adopt the written snapshot via ResyncFrom (the
  /// recovery donor path, DESIGN.md §15).
  Status Compact(const std::string& path, ResyncState* resync = nullptr);

  /// Live mode only: wholesale state adoption from a sibling's compacted
  /// snapshot — the recovery resync path (DESIGN.md §15). Loads `path`
  /// through the exact same trust pipeline as a hot reload (checksums,
  /// model compat, Validate, warm probe), then replaces base + delta +
  /// tombstones with the donor's state via LiveCorpus::AdoptBase. On ANY
  /// failure the current tiers keep serving and the error is returned.
  Status ResyncFrom(const std::string& path, std::vector<uint64_t> ids,
                    uint64_t next_id);

  /// Order-independent corpus digest for anti-entropy comparison across
  /// replicas (DESIGN.md §15). Live engines answer in O(1) from the
  /// incrementally maintained fold; frozen engines compute once per served
  /// snapshot and cache it. The fail-closed `recover/digest` failpoint
  /// fires first, so an injected fault yields an error — never a wrong
  /// digest.
  Result<recover::CorpusDigest> Digest() const;

  /// Live mode, HNSW bases only: folds the delta tier into a copy of the
  /// base graph via online insert (RCU copy-on-write publish) without
  /// touching disk. Tombstones remain as an overlay until a full Compact.
  Status AbsorbDelta();

  /// Live-corpus shape (all-zero when the engine is not live).
  stream::LiveStats LiveStats() const;

  bool live() const { return live_ != nullptr; }

  /// Hot snapshot reload: loads `path` (retrying transient failures under
  /// `policy`), validates it against the manifest, the engine's model, and
  /// the index invariants, warms it with a probe query, then swaps it in
  /// atomically. In-flight and concurrent batches keep the snapshot they
  /// already hold (shared_ptr pin), so no query ever observes a torn swap.
  /// On ANY failure the old snapshot keeps serving and the error is
  /// returned — a corrupt replacement costs nothing but the attempt.
  /// Serialized: concurrent reloads run one at a time. Safe under load.
  Status ReloadSnapshot(const std::string& path,
                        const RetryPolicy& policy = {});

  /// Coarse health: kLoading while a reload is validating, kTripped while
  /// the breaker is open, kDegraded while the fallback is answering,
  /// kServing otherwise.
  Health health() const;

  /// Stops accepting new work, drains every queued request (expired ones
  /// are shed, the rest are answered), and joins the workers. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// Point-in-time metrics (concurrent-safe; counters are monotone).
  EngineMetrics Metrics() const;

  /// The `engine=` label value this instance exports under in the global
  /// obs::Registry (engines self-register a metrics collector on Create
  /// and unregister on Stop).
  const std::string& instance() const { return instance_; }

  /// The currently served snapshot, pinned: a reload may swap the engine
  /// past it, but the returned pointer stays valid for as long as the
  /// caller holds it.
  std::shared_ptr<const Snapshot> snapshot() const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Request {
    enum class Kind : uint8_t { kQuery = 0, kUpsert = 1, kDelete = 2 };
    Kind kind = Kind::kQuery;
    std::string record;
    /// Populated instead of `record` on the SubmitEmbedded path.
    std::vector<float> embedding;
    bool pre_embedded = false;
    /// kDelete only: the global id to tombstone.
    uint64_t delete_id = 0;
    SteadyTime deadline;
    SteadyTime enqueued;
    /// Admission/accounting identity ("" = the default tenant).
    std::string tenant;
    /// Arrival order, assigned under mu_ — the EDF heap's tie-breaker and
    /// the kFifo ordering key.
    uint64_t seq = 0;
    /// Exactly one promise is armed, per kind.
    std::promise<Result<QueryReply>> promise;
    std::promise<Result<MutateReply>> mutate_promise;
  };

  /// Min-heap "greater" comparator over queued requests: under kEdf the
  /// earliest deadline drains first (seq breaks ties, so deadline-free
  /// traffic — every deadline == kNoDeadline — degenerates to arrival
  /// order); under kFifo only seq matters.
  struct RequestUrgency {
    QueuePolicy policy;
    bool operator()(const Request& a, const Request& b) const {
      if (policy == QueuePolicy::kEdf && a.deadline != b.deadline) {
        return a.deadline > b.deadline;
      }
      return a.seq > b.seq;
    }
  };

  Engine(Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
         const EngineOptions& options);

  void WorkerLoop();
  void ProcessBatch(std::vector<Request> batch);
  /// Common admission tail of Submit/SubmitEmbedded: token bucket (at
  /// `admit_time`; kAdmitNow = the real clock), breaker gate, queue bound,
  /// heap push + wake a worker.
  Status Enqueue(Request request, SteadyTime admit_time);
  /// Mutation-path admission: arms the mutate promise, refuses when the
  /// engine is not live, then shares Enqueue.
  Result<std::future<Result<MutateReply>>> EnqueueMutation(
      Request request, SteadyTime admit_time);
  /// Fails one request through whichever promise its kind armed.
  static void FailRequest(Request& request, const Status& status);
  /// Validates a snapshot against the engine's embedding model (same checks
  /// as Create) — shared by Create and ReloadSnapshot.
  static Status CheckModelCompatible(const SnapshotManifest& manifest,
                                     const embed::EmbeddingModel& model);
  /// The shared trust pipeline in front of every base swap: load under the
  /// retry policy (ALWAYS with the paranoid LoadOptions default — bytes
  /// about to serve are never trusted), check model compatibility, run
  /// Validate(), then warm-probe the index. Used by ReloadSnapshot and the
  /// compaction commit, so a compacted base clears the exact same bar as a
  /// hot reload.
  Result<std::shared_ptr<const Snapshot>> LoadValidated(
      const std::string& path, const RetryPolicy& policy);

  std::shared_ptr<const Snapshot> snapshot_;  // swapped by ReloadSnapshot
  mutable std::mutex snapshot_mu_;            // guards snapshot_ and k_
  /// Non-null iff options.live: the mutable overlay every batch reads and
  /// writes through. The base inside it is what snapshot() returns.
  std::shared_ptr<stream::LiveCorpus> live_;
  std::shared_ptr<embed::EmbeddingModel> model_;
  EngineOptions options_;
  std::atomic<size_t> k_{10};

  std::mutex mu_;
  std::condition_variable queue_cv_;
  /// Binary heap ordered by RequestUrgency (std::push_heap/pop_heap):
  /// queue_.front() is always the next request to drain under the
  /// configured policy.
  std::vector<Request> queue_;
  uint64_t queue_seq_ = 0;  // next arrival sequence number, under mu_
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::string instance_;  // registry label, "0", "1", ... per process
  uint64_t collector_id_ = 0;
  std::atomic<bool> collector_registered_{false};

  CircuitBreaker breaker_;
  AdmissionController admission_;
  TenantLedger ledger_;
  std::mutex reload_mu_;  // serializes ReloadSnapshot callers
  std::mutex compaction_mu_;  // serializes Compact/Absorb/Resync callers
  /// Frozen-engine digest cache (live engines answer from the corpus).
  mutable std::mutex digest_mu_;
  mutable std::shared_ptr<const Snapshot> digest_snapshot_;
  mutable recover::CorpusDigest digest_cache_;
  std::atomic<bool> reloading_{false};
  std::atomic<bool> degraded_{false};

  // Counters are atomics (not guarded by mu_): Metrics() must stay cheap
  // enough to call from a live load generator.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> throttled_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> short_circuits_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> upserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> mutation_failures_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compaction_failures_{0};
  std::atomic<uint64_t> absorbs_{0};
  LatencyHistogram queue_micros_;
  LatencyHistogram embed_micros_;
  LatencyHistogram query_micros_;
  LatencyHistogram mutate_micros_;
  LatencyHistogram postprocess_micros_;
  LatencyHistogram total_micros_;
  LatencyHistogram batch_size_;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_ENGINE_H_
