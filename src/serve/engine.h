#ifndef EMBER_SERVE_ENGINE_H_
#define EMBER_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/timer.h"
#include "embed/embedding_model.h"
#include "index/neighbor.h"
#include "serve/circuit_breaker.h"
#include "serve/snapshot.h"

namespace ember::serve {

/// Coarse engine health, surfaced in EngineMetrics (DESIGN.md §10):
///   kServing  — normal operation
///   kDegraded — last batch answered by the exact-scan fallback
///   kTripped  — circuit breaker open; Submits are short-circuited
///   kLoading  — a hot snapshot reload is validating/warming
enum class Health : uint32_t {
  kServing = 0,
  kDegraded = 1,
  kTripped = 2,
  kLoading = 3,
};

const char* HealthName(Health health);

struct EngineOptions {
  /// Per-query neighbor count; 0 uses the snapshot manifest's default_k.
  size_t k = 0;
  /// Bounded queue capacity. A full queue REJECTS new submissions
  /// immediately (backpressure) — Submit never blocks the caller.
  size_t max_queue = 1024;
  /// Batching policy: a worker drains as soon as `max_batch` requests are
  /// queued, or when the oldest queued request has waited `max_wait_micros`,
  /// whichever comes first. Larger windows amortize the embed/query batch
  /// cost; smaller windows cut tail latency at low load.
  size_t max_batch = 32;
  int64_t max_wait_micros = 2000;
  /// Batcher threads. Each drains whole batches, so >1 mainly helps when
  /// embedding and index search can overlap on spare cores.
  size_t workers = 1;
  /// Bounded attempts around the embed stage: transient failures back off
  /// (deterministic seeded jitter) and retry before the batch is failed.
  RetryPolicy embed_retry;
  /// Circuit breaker over batch outcomes: after `trip_ratio` of the recent
  /// window fails, Submit answers kUnavailable in O(1) instead of queueing
  /// doomed work behind a failing stage.
  BreakerOptions breaker;
  /// Degraded mode: when the primary index query stage fails, answer from
  /// an exact brute-force scan of the snapshot's corpus matrix instead of
  /// failing the batch. OFF fails the batch with the stage error.
  bool allow_degraded = true;
};

/// A completed query: top-k corpus neighbors of the submitted record.
struct QueryReply {
  std::vector<index::Neighbor> neighbors;
};

/// Monotone counters + latency histograms, readable at any time. Counter
/// identity: submitted == completed + expired + failed + still-in-flight
/// (rejected and short_circuited submissions never enter the queue and are
/// counted separately; retries/fallbacks/trips are rate counters, not part
/// of the identity).
struct EngineMetrics {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t completed = 0;  // future fulfilled with neighbors
  uint64_t rejected = 0;   // refused at Submit (queue full / stopped)
  uint64_t expired = 0;    // shed before embedding (deadline passed)
  uint64_t failed = 0;     // future fulfilled with a non-deadline error
  uint64_t deadline_misses = 0;  // completed, but after their deadline
  uint64_t batches = 0;

  // Resilience counters (PR 4).
  Health health = Health::kServing;
  uint64_t retries = 0;          // embed attempts beyond each batch's first
  uint64_t fallbacks = 0;        // requests answered by the degraded scan
  uint64_t breaker_trips = 0;    // closed/half-open -> open transitions
  uint64_t short_circuits = 0;   // Submits refused fast while tripped
  uint64_t reloads = 0;          // successful hot snapshot swaps
  uint64_t reload_failures = 0;  // rejected reloads (old snapshot kept)

  HistogramSnapshot queue_micros;  // submit -> drained from the queue
  HistogramSnapshot embed_micros;  // per batch: vectorization
  HistogramSnapshot query_micros;  // per batch: index search
  HistogramSnapshot postprocess_micros;  // per batch: reply assembly/futures
  HistogramSnapshot total_micros;  // submit -> future completed
  HistogramSnapshot batch_size;    // live requests per processed batch
};

/// Long-lived online ER query engine in the inference-server style:
/// producers Submit() single records with optional deadlines into a bounded
/// MPMC queue; worker threads drain it under the max-batch/max-wait policy,
/// vectorize each batch through the model's parallel VectorizeAll, run one
/// QueryBatch against the snapshot, and complete the futures.
///
/// Resilience (DESIGN.md §10): the embed stage retries under
/// options.embed_retry; a circuit breaker trips on persistent batch
/// failures and short-circuits Submits; a failing primary index degrades to
/// the exact-scan fallback; and ReloadSnapshot swaps a validated + warmed
/// replacement under an RCU-style shared_ptr without dropping in-flight
/// queries.
///
/// Determinism caveat (DESIGN.md §9): batch composition varies under load,
/// but per-request results never do — each embedding row depends only on
/// its own record and each query only on the frozen index, so a record
/// returns the same neighbors whether it shared a batch or rode alone.
class Engine {
 public:
  /// Takes ownership of the snapshot and shares the query-side model
  /// (Initialize() is forced here, before any worker can race it). Fails
  /// with InvalidArgument when the model's code/dim disagree with the
  /// snapshot manifest. Workers start immediately on success.
  static Result<std::unique_ptr<Engine>> Create(
      Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
      const EngineOptions& options);

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Non-blocking submit of one record. On acceptance returns the future
  /// that will carry the top-k neighbors (or DeadlineExceeded if shed);
  /// when the queue is full, the engine is stopped, or the circuit breaker
  /// is open it returns Unavailable immediately — backpressure and
  /// fail-fast are reported, never dropped.
  Result<std::future<Result<QueryReply>>> Submit(
      std::string record, SteadyTime deadline = kNoDeadline);

  /// Non-blocking submit of one already-embedded query vector — the sharded
  /// Router's fan-out path (DESIGN.md §13): the router embeds a record once
  /// and each shard engine skips its embed stage for that request. Same
  /// admission rules and reply semantics as Submit; fails with
  /// InvalidArgument when the vector's dimensionality does not match the
  /// engine's model.
  Result<std::future<Result<QueryReply>>> SubmitEmbedded(
      std::vector<float> embedding, SteadyTime deadline = kNoDeadline);

  /// Hot snapshot reload: loads `path` (retrying transient failures under
  /// `policy`), validates it against the manifest, the engine's model, and
  /// the index invariants, warms it with a probe query, then swaps it in
  /// atomically. In-flight and concurrent batches keep the snapshot they
  /// already hold (shared_ptr pin), so no query ever observes a torn swap.
  /// On ANY failure the old snapshot keeps serving and the error is
  /// returned — a corrupt replacement costs nothing but the attempt.
  /// Serialized: concurrent reloads run one at a time. Safe under load.
  Status ReloadSnapshot(const std::string& path,
                        const RetryPolicy& policy = {});

  /// Coarse health: kLoading while a reload is validating, kTripped while
  /// the breaker is open, kDegraded while the fallback is answering,
  /// kServing otherwise.
  Health health() const;

  /// Stops accepting new work, drains every queued request (expired ones
  /// are shed, the rest are answered), and joins the workers. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// Point-in-time metrics (concurrent-safe; counters are monotone).
  EngineMetrics Metrics() const;

  /// The `engine=` label value this instance exports under in the global
  /// obs::Registry (engines self-register a metrics collector on Create
  /// and unregister on Stop).
  const std::string& instance() const { return instance_; }

  /// The currently served snapshot, pinned: a reload may swap the engine
  /// past it, but the returned pointer stays valid for as long as the
  /// caller holds it.
  std::shared_ptr<const Snapshot> snapshot() const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Request {
    std::string record;
    /// Populated instead of `record` on the SubmitEmbedded path.
    std::vector<float> embedding;
    bool pre_embedded = false;
    SteadyTime deadline;
    SteadyTime enqueued;
    std::promise<Result<QueryReply>> promise;
  };

  Engine(Snapshot snapshot, std::shared_ptr<embed::EmbeddingModel> model,
         const EngineOptions& options);

  void WorkerLoop();
  void ProcessBatch(std::vector<Request> batch);
  /// Common admission tail of Submit/SubmitEmbedded: breaker gate, queue
  /// bound, enqueue + wake a worker.
  Result<std::future<Result<QueryReply>>> Enqueue(Request request);
  /// Validates a snapshot against the engine's embedding model (same checks
  /// as Create) — shared by Create and ReloadSnapshot.
  static Status CheckModelCompatible(const SnapshotManifest& manifest,
                                     const embed::EmbeddingModel& model);

  std::shared_ptr<const Snapshot> snapshot_;  // swapped by ReloadSnapshot
  mutable std::mutex snapshot_mu_;            // guards snapshot_ and k_
  std::shared_ptr<embed::EmbeddingModel> model_;
  EngineOptions options_;
  std::atomic<size_t> k_{10};

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::string instance_;  // registry label, "0", "1", ... per process
  uint64_t collector_id_ = 0;
  std::atomic<bool> collector_registered_{false};

  CircuitBreaker breaker_;
  std::mutex reload_mu_;  // serializes ReloadSnapshot callers
  std::atomic<bool> reloading_{false};
  std::atomic<bool> degraded_{false};

  // Counters are atomics (not guarded by mu_): Metrics() must stay cheap
  // enough to call from a live load generator.
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> short_circuits_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_failures_{0};
  LatencyHistogram queue_micros_;
  LatencyHistogram embed_micros_;
  LatencyHistogram query_micros_;
  LatencyHistogram postprocess_micros_;
  LatencyHistogram total_micros_;
  LatencyHistogram batch_size_;
};

}  // namespace ember::serve

#endif  // EMBER_SERVE_ENGINE_H_
