#ifndef EMBER_SERVE_SNAPSHOT_INTERNAL_H_
#define EMBER_SERVE_SNAPSHOT_INTERNAL_H_

#include "common/binary_io.h"
#include "serve/snapshot.h"

/// Shared between snapshot.cc (the EMBS0001 stream) and snapshot_v2.cc
/// (the EMBS0002 section container). Not part of the public serve API.

namespace ember::serve::internal {

inline constexpr char kMagicV1[8] = {'E', 'M', 'B', 'S', '0', '0', '0', '1'};
inline constexpr char kMagicV2[8] = {'E', 'M', 'B', 'S', '0', '0', '0', '2'};

/// v1 manifest fields (no storage kind — EMBS0001 is always float32). The
/// EMBS0002 manifest blob is these fields plus a trailing storage u32.
void WriteManifest(BinaryWriter& writer, const SnapshotManifest& manifest);
bool ReadManifest(BinaryReader& reader, SnapshotManifest& manifest);

}  // namespace ember::serve::internal

#endif  // EMBER_SERVE_SNAPSHOT_INTERNAL_H_
