// Dumps a generated Clean-Clean dataset to CSV files:
//
//   generate_dataset <D1..D10> <out_prefix> [--scale f] [--seed n]
//
// Writes <prefix>_left.csv, <prefix>_right.csv (schema header + one row per
// entity) and <prefix>_matches.csv (left_id,right_id).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "datagen/benchmark_datasets.h"
#include "datagen/csv.h"

using namespace ember;

namespace {

bool WriteCollection(const std::string& path,
                     const datagen::EntityCollection& collection) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(collection.size() + 1);
  std::vector<std::string> header = {"id"};
  header.insert(header.end(), collection.schema.begin(),
                collection.schema.end());
  rows.push_back(header);
  for (size_t i = 0; i < collection.size(); ++i) {
    std::vector<std::string> row = {std::to_string(i)};
    const auto& values = collection.ValuesOf(i);
    row.insert(row.end(), values.begin(), values.end());
    rows.push_back(std::move(row));
  }
  std::ofstream out(path);
  if (!out) return false;
  out << datagen::WriteCsv(rows);
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <D1..D10> <out_prefix> [--scale f] [--seed n]\n",
                 argv[0]);
    return 2;
  }
  const std::string id = argv[1];
  const std::string prefix = argv[2];
  double scale = 0.25;
  uint64_t seed = 41;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  const auto spec = datagen::CleanCleanSpecById(id);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", id.c_str());
    return 1;
  }
  const datagen::CleanCleanDataset dataset =
      datagen::GenerateCleanClean(spec.value(), scale, seed);

  if (!WriteCollection(prefix + "_left.csv", dataset.left) ||
      !WriteCollection(prefix + "_right.csv", dataset.right)) {
    std::fprintf(stderr, "failed to write collections\n");
    return 1;
  }
  std::vector<std::vector<std::string>> matches = {{"left_id", "right_id"}};
  for (const auto& [l, r] : dataset.matches) {
    matches.push_back({std::to_string(l), std::to_string(r)});
  }
  std::ofstream out(prefix + "_matches.csv");
  out << datagen::WriteCsv(matches);

  std::printf("%s: wrote %zu + %zu entities, %zu matches to %s_*.csv\n",
              dataset.id.c_str(), dataset.left.size(), dataset.right.size(),
              dataset.matches.size(), prefix.c_str());
  return 0;
}
