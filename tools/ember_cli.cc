// Small command-line front end to the library:
//
//   ember_cli models
//       List the 12 reproduced embedding models (Table 1 metadata).
//   ember_cli block <D1..D10> [--k n] [--scale f] [--seed n] [--hnsw]
//       Generate the dataset, embed with S-GTR-T5, top-k block, report
//       recall.
//   ember_cli pipeline <D1..D10> [--scale f] [--seed n] [--auto]
//       End-to-end blocking + matching with Unique Mapping Clustering.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/blocking.h"
#include "core/pipeline.h"
#include "datagen/benchmark_datasets.h"
#include "embed/embedding_model.h"
#include "eval/metrics.h"
#include "eval/report.h"

using namespace ember;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s models\n"
               "       %s block <D1..D10> [--k n] [--scale f] [--seed n] "
               "[--hnsw]\n"
               "       %s pipeline <D1..D10> [--scale f] [--seed n] [--auto]\n",
               argv0, argv0, argv0);
  return 2;
}

struct CliArgs {
  std::string dataset;
  size_t k = 10;
  double scale = 0.1;
  uint64_t seed = 41;
  bool hnsw = false;
  bool auto_threshold = false;
};

bool ParseCli(int argc, char** argv, int first, CliArgs& args) {
  if (first >= argc) return false;
  args.dataset = argv[first];
  for (int i = first + 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--k" && i + 1 < argc) {
      args.k = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--scale" && i + 1 < argc) {
      args.scale = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--hnsw") {
      args.hnsw = true;
    } else if (arg == "--auto") {
      args.auto_threshold = true;
    } else {
      return false;
    }
  }
  return true;
}

int RunModels() {
  eval::Table table("ember models (Table 1)");
  table.SetHeader({"code", "name", "family", "dim", "max_seq", "params_M"});
  for (const embed::ModelId id : embed::AllModels()) {
    const embed::ModelInfo& info = embed::GetModelInfo(id);
    table.AddRow({info.code, info.name, embed::ModelFamilyName(info.family),
                  std::to_string(info.dim),
                  info.max_seq_tokens == 0 ? "-"
                                           : std::to_string(info.max_seq_tokens),
                  info.param_millions < 0
                      ? "-"
                      : eval::Table::Num(info.param_millions, 0)});
  }
  table.Print();
  return 0;
}

struct LoadedDataset {
  datagen::CleanCleanDataset data;
  eval::GroundTruth truth;
  la::Matrix left, right;
};

bool LoadAndEmbed(const CliArgs& args, LoadedDataset& out) {
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return false;
  }
  out.data = datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  for (const auto& [l, r] : out.data.matches) {
    out.truth.AddCleanCleanPair(l, r);
  }
  auto model = embed::CreateModel(embed::ModelId::kSGtrT5);
  model->Initialize();
  out.left = model->VectorizeAll(out.data.left.AllSentences());
  out.right = model->VectorizeAll(out.data.right.AllSentences());
  return true;
}

int RunBlock(const CliArgs& args) {
  LoadedDataset loaded;
  if (!LoadAndEmbed(args, loaded)) return 1;
  core::BlockingOptions options;
  options.k = args.k;
  options.use_hnsw = args.hnsw;
  options.hnsw.seed = args.seed;
  const core::BlockingResult blocked =
      core::BlockCleanClean(loaded.left, loaded.right, options);
  const eval::PrfMetrics metrics =
      eval::EvaluateCleanCleanCandidates(blocked.candidates, loaded.truth);
  std::printf("%s  %s  k=%zu  recall=%.4f  index=%.3fs query=%.3fs\n",
              args.dataset.c_str(), args.hnsw ? "hnsw" : "exact", args.k,
              metrics.recall, blocked.index_seconds, blocked.query_seconds);
  return 0;
}

int RunPipeline(const CliArgs& args) {
  LoadedDataset loaded;
  if (!LoadAndEmbed(args, loaded)) return 1;
  core::PipelineOptions options;
  options.auto_threshold = args.auto_threshold;
  core::ErPipeline pipeline(options);
  const core::PipelineResult result =
      pipeline.RunOnVectors(loaded.left, loaded.right);
  std::vector<std::pair<uint32_t, uint32_t>> predicted;
  for (const auto& m : result.matches) predicted.emplace_back(m.left, m.right);
  const eval::PrfMetrics metrics =
      eval::EvaluateCleanCleanMatches(predicted, loaded.truth);
  std::printf(
      "%s  delta=%.3f  precision=%.4f recall=%.4f f1=%.4f  "
      "block=%.3fs match=%.3fs\n",
      args.dataset.c_str(), result.threshold_used, metrics.precision,
      metrics.recall, metrics.f1, result.blocking_seconds,
      result.matching_seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command == "models") return RunModels();
  CliArgs args;
  if (!ParseCli(argc, argv, 2, args)) return Usage(argv[0]);
  if (command == "block") return RunBlock(args);
  if (command == "pipeline") return RunPipeline(args);
  return Usage(argv[0]);
}
