// Small command-line front end to the library:
//
//   ember_cli models
//       List the 12 reproduced embedding models (Table 1 metadata).
//   ember_cli block <D1..D10> [--k n] [--scale f] [--seed n] [--hnsw]
//       Generate the dataset, embed with S-GTR-T5, top-k block, report
//       recall.
//   ember_cli pipeline <D1..D10> [--scale f] [--seed n] [--auto]
//       End-to-end blocking + matching with Unique Mapping Clustering.
//   ember_cli serve-bench <D1..D10> [--scale f] [--seed n] [--k n]
//       [--index exact|hnsw|lsh] [--storage f32|int8] [--snapshot path]
//       [--qps n] [--duration s] [--batch n] [--wait-us n] [--queue n]
//       [--deadline-ms f] [--workers n]
//       Freeze the blocking pipeline into a snapshot (built, or loaded
//       from --snapshot when the file exists), start the online serving
//       engine, drive an open-loop load, and dump latency metrics.
//       --trace <path> additionally records spans and writes a Chrome
//       trace_event JSON (open it at ui.perfetto.dev); --metrics prints
//       the Prometheus exposition of the metrics registry after the run.
//   ember_cli metrics-dump <D1..D10> [--json] [--requests n] [--scale f]
//       [--seed n] [--k n] [--index exact|hnsw|lsh]
//       Run a short closed-loop serve workload and print the global
//       metrics registry: Prometheus text exposition by default, the
//       JSON exporter with --json.
//   ember_cli trace-dump <D1..D10> [--out path] [--requests n] [--scale f]
//       [--seed n] [--k n] [--index exact|hnsw|lsh]
//       Run the same workload with tracing enabled and write the span
//       stream as Chrome trace_event JSON (default trace.json), plus a
//       per-stage time breakdown on stdout.
//   ember_cli snapshot-convert <in> <out> [--quantize int8] [--to v1|v2]
//       Re-encode a snapshot between container formats: EMBS0001 (heap
//       stream) <-> EMBS0002 (mmap-able sections), optionally building the
//       int8 scan tier for exact snapshots (--quantize int8 forces --to
//       v2, the only container that can carry it).
//   ember_cli stream-dedup <D1..D10> [--scale f] [--seed n] [--k n]
//       [--threshold t] [--report n] [--compact-rows n] [--snapshot path]
//       Streaming ER against a live corpus (DESIGN.md §14): start from an
//       EMPTY live snapshot, stream the dataset's records one at a time,
//       resolve each against the corpus so far (best cross-side neighbor
//       with sim = (1 + cos) / 2 >= --threshold => merge clusters), then
//       admit the record via Engine::Upsert. A background Compactor folds
//       the delta tier into fresh base snapshots (--snapshot path) while
//       the stream runs. Reports incremental pairwise precision/recall/F1
//       every --report records and a final greppable summary line.
//   ember_cli snapshot-shard <D1..D10> --shards N [--prefix p] [--scale f]
//       [--seed n] [--k n] [--index exact|hnsw|lsh] [--storage f32|int8]
//       Partition the dataset's corpus round-robin into N shard snapshots
//       (<prefix>.s<i>-of-<N>.snap), then validate the set by loading it
//       back fail-closed and, for exact indexes, spot-checking that the
//       k-way merged per-shard top-k is bit-identical to the unsharded
//       oracle.
//
//   ember_cli trace-record <out.trace> [--seed n] [--tenants n] [--rows n]
//       [--qps f] [--duration s] [--zipf s] [--upserts f] [--deletes f]
//       [--quota f] [--quota-burst f] [--deadline-ms f]
//       [--phases poisson,burst,diurnal,cold] [--notes s]
//       Generate a seeded multi-tenant workload trace (DESIGN.md §16) and
//       write it as a checksummed EMBT0001 container. The same flags always
//       produce byte-identical files.
//   ember_cli trace-replay <in.trace> [--workers n] [--batch n] [--wait-us n]
//       [--queue n] [--fifo] [--timed] [--speed f] [--outstanding n] [--rows n]
//       Load a trace fail-closed and replay it against one live engine per
//       tenant. Virtual-time by default (bit-reproducible admission
//       decisions and counters — the replay signature is printed for
//       comparison); --timed submits on the recorded open-loop schedule
//       with real deadlines and reports per-tenant latency.
//
//   serve-bench additionally accepts --shards N --replicas R: the corpus is
//   served by a serve::Router over N shard groups x R replica engines
//   (health-aware scatter-gather) instead of a single engine. --snapshot
//   then names the shard-set prefix.
//
//   serve-bench also takes the workload/admission flags: --tenants n tags
//   the open-loop submissions round-robin across n tenants, --quota f
//   [--quota-burst f] arms a per-tenant token bucket at that rate,
//   --policy edf|fifo picks the queue drain order, and --trace-file path
//   drives the engine from a recorded EMBT0001 trace (timed replay) instead
//   of the synthetic query loop.
//
// When the build compiles failpoints in (the default), the EMBER_FAILPOINTS
// environment variable arms fault-injection sites before any command runs;
// see common/failpoint.h for the spec grammar.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/timer.h"
#include "core/blocking.h"
#include "core/pipeline.h"
#include "core/stream_clusters.h"
#include "datagen/benchmark_datasets.h"
#include "embed/embedding_model.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "load/generator.h"
#include "load/replayer.h"
#include "load/trace.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serve/engine.h"
#include "serve/router.h"
#include "serve/snapshot.h"
#include "stream/compactor.h"

using namespace ember;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s models\n"
               "       %s block <D1..D10> [--k n] [--scale f] [--seed n] "
               "[--hnsw]\n"
               "       %s pipeline <D1..D10> [--scale f] [--seed n] [--auto]\n"
               "       %s serve-bench <D1..D10> [--scale f] [--seed n] "
               "[--k n] [--index exact|hnsw|lsh] [--storage f32|int8] "
               "[--snapshot path]\n"
               "           [--qps n] [--duration s] [--batch n] [--wait-us n] "
               "[--queue n] [--deadline-ms f] [--workers n]\n"
               "           [--trace path] [--metrics]\n"
               "       %s metrics-dump <D1..D10> [--json] [--requests n] "
               "[--scale f] [--seed n] [--k n] [--index exact|hnsw|lsh]\n"
               "       %s trace-dump <D1..D10> [--out path] [--requests n] "
               "[--scale f] [--seed n] [--k n] [--index exact|hnsw|lsh]\n"
               "       %s snapshot-convert <in> <out> [--quantize int8] "
               "[--to v1|v2]\n"
               "       %s stream-dedup <D1..D10> [--scale f] [--seed n] "
               "[--k n] [--threshold t] [--report n] [--compact-rows n] "
               "[--snapshot path]\n"
               "       %s snapshot-shard <D1..D10> --shards N [--prefix p] "
               "[--scale f] [--seed n] [--k n] [--index exact|hnsw|lsh] "
               "[--storage f32|int8]\n"
               "       %s trace-record <out.trace> [--seed n] [--tenants n] "
               "[--rows n] [--qps f] [--duration s] [--zipf s] [--upserts f] "
               "[--deletes f] [--quota f] [--quota-burst f] [--deadline-ms f] "
               "[--phases poisson,burst,diurnal,cold] [--notes s]\n"
               "       %s trace-replay <in.trace> [--workers n] [--batch n] "
               "[--wait-us n] [--queue n] [--fifo] [--timed] [--speed f] "
               "[--outstanding n] [--rows n]\n"
               "       (serve-bench also takes --shards N --replicas R for "
               "routed scatter-gather serving, --kill-replica s:r "
               "[--rejoin-replica] for a recovery drill, and --tenants n "
               "--quota f --policy edf|fifo --trace-file path for the "
               "workload/admission harness)\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0);
  return 2;
}

struct CliArgs {
  std::string dataset;
  size_t k = 10;
  double scale = 0.1;
  uint64_t seed = 41;
  bool hnsw = false;
  bool auto_threshold = false;
  // serve-bench
  std::string index_kind = "exact";
  std::string storage = "f32";
  std::string snapshot_path;
  double qps = 200;
  double duration_seconds = 3;
  size_t max_batch = 32;
  int64_t wait_micros = 2000;
  size_t max_queue = 256;
  double deadline_ms = 50;
  size_t workers = 1;
  // observability
  std::string trace_path;   // serve-bench --trace
  bool dump_metrics = false;  // serve-bench --metrics
  bool json = false;          // metrics-dump --json
  std::string out_path = "trace.json";  // trace-dump --out
  size_t requests = 64;       // metrics-dump/trace-dump workload size
  // sharded serving
  size_t shards = 1;     // serve-bench/snapshot-shard shard count
  size_t replicas = 1;   // serve-bench replicas per shard
  std::string prefix;    // snapshot-shard output prefix
  // recovery drill (serve-bench): kill "s:r" at 1/3 of the run, mutate past
  // it, optionally rejoin at 2/3 and require convergence before exit 0.
  std::string kill_replica;
  bool rejoin_replica = false;
  // stream-dedup
  double threshold = 0.75;   // match when sim = (1 + cos) / 2 >= threshold
  size_t report_every = 0;   // 0: pick ~5 checkpoints from the stream length
  size_t compact_rows = 256; // compactor delta-row trigger (0 disables)
  // workload harness (trace-record / trace-replay / serve-bench, PR 10)
  std::string trace_file;    // serve-bench --trace-file
  size_t tenants = 1;        // tenant count (generation or tagging)
  size_t rows = 0;           // per-tenant corpus rows (0: infer/default)
  double zipf = 1.0;         // Zipf skew exponent
  double upserts = 0;        // upsert fraction of each tenant's events
  double deletes = 0;        // delete fraction
  double quota = 0;          // per-tenant token-bucket rate (0: no quota)
  double quota_burst = 8;    // token-bucket burst capacity
  std::string policy = "edf";  // queue drain order: edf | fifo
  std::string phases = "poisson";  // comma list: poisson|burst|diurnal|cold
  std::string notes;         // trace-record manifest notes
  bool timed = false;        // trace-replay: wall-clock mode
  double speed = 1.0;        // timed replay speedup
  size_t outstanding = 64;   // replay max in-flight queries
};

bool ParseCli(int argc, char** argv, int first, CliArgs& args) {
  if (first >= argc) return false;
  args.dataset = argv[first];
  for (int i = first + 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--k" && i + 1 < argc) {
      args.k = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--scale" && i + 1 < argc) {
      args.scale = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--hnsw") {
      args.hnsw = true;
    } else if (arg == "--auto") {
      args.auto_threshold = true;
    } else if (arg == "--index" && i + 1 < argc) {
      args.index_kind = argv[++i];
    } else if (arg == "--storage" && i + 1 < argc) {
      args.storage = argv[++i];
    } else if (arg == "--snapshot" && i + 1 < argc) {
      args.snapshot_path = argv[++i];
    } else if (arg == "--qps" && i + 1 < argc) {
      args.qps = std::atof(argv[++i]);
    } else if (arg == "--duration" && i + 1 < argc) {
      args.duration_seconds = std::atof(argv[++i]);
    } else if (arg == "--batch" && i + 1 < argc) {
      args.max_batch = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--wait-us" && i + 1 < argc) {
      args.wait_micros = std::atoll(argv[++i]);
    } else if (arg == "--queue" && i + 1 < argc) {
      args.max_queue = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      args.deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      args.workers = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--trace" && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (arg == "--metrics") {
      args.dump_metrics = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      args.out_path = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      args.requests = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--shards" && i + 1 < argc) {
      args.shards = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--replicas" && i + 1 < argc) {
      args.replicas = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--prefix" && i + 1 < argc) {
      args.prefix = argv[++i];
    } else if (arg == "--kill-replica" && i + 1 < argc) {
      args.kill_replica = argv[++i];
    } else if (arg == "--rejoin-replica") {
      args.rejoin_replica = true;
    } else if (arg == "--threshold" && i + 1 < argc) {
      args.threshold = std::atof(argv[++i]);
    } else if (arg == "--report" && i + 1 < argc) {
      args.report_every = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--compact-rows" && i + 1 < argc) {
      args.compact_rows = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--trace-file" && i + 1 < argc) {
      args.trace_file = argv[++i];
    } else if (arg == "--tenants" && i + 1 < argc) {
      args.tenants = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--rows" && i + 1 < argc) {
      args.rows = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg == "--zipf" && i + 1 < argc) {
      args.zipf = std::atof(argv[++i]);
    } else if (arg == "--upserts" && i + 1 < argc) {
      args.upserts = std::atof(argv[++i]);
    } else if (arg == "--deletes" && i + 1 < argc) {
      args.deletes = std::atof(argv[++i]);
    } else if (arg == "--quota" && i + 1 < argc) {
      args.quota = std::atof(argv[++i]);
    } else if (arg == "--quota-burst" && i + 1 < argc) {
      args.quota_burst = std::atof(argv[++i]);
    } else if (arg == "--policy" && i + 1 < argc) {
      args.policy = argv[++i];
    } else if (arg == "--fifo") {
      args.policy = "fifo";
    } else if (arg == "--phases" && i + 1 < argc) {
      args.phases = argv[++i];
    } else if (arg == "--notes" && i + 1 < argc) {
      args.notes = argv[++i];
    } else if (arg == "--timed") {
      args.timed = true;
    } else if (arg == "--speed" && i + 1 < argc) {
      args.speed = std::atof(argv[++i]);
    } else if (arg == "--outstanding" && i + 1 < argc) {
      args.outstanding = static_cast<size_t>(std::atoi(argv[++i]));
    } else {
      return false;
    }
  }
  return true;
}

int RunModels() {
  eval::Table table("ember models (Table 1)");
  table.SetHeader({"code", "name", "family", "dim", "max_seq", "params_M"});
  for (const embed::ModelId id : embed::AllModels()) {
    const embed::ModelInfo& info = embed::GetModelInfo(id);
    table.AddRow({info.code, info.name, embed::ModelFamilyName(info.family),
                  std::to_string(info.dim),
                  info.max_seq_tokens == 0 ? "-"
                                           : std::to_string(info.max_seq_tokens),
                  info.param_millions < 0
                      ? "-"
                      : eval::Table::Num(info.param_millions, 0)});
  }
  table.Print();
  return 0;
}

struct LoadedDataset {
  datagen::CleanCleanDataset data;
  eval::GroundTruth truth;
  la::Matrix left, right;
};

bool LoadAndEmbed(const CliArgs& args, LoadedDataset& out) {
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return false;
  }
  out.data = datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  for (const auto& [l, r] : out.data.matches) {
    out.truth.AddCleanCleanPair(l, r);
  }
  auto model = embed::CreateModel(embed::ModelId::kSGtrT5);
  model->Initialize();
  out.left = model->VectorizeAll(out.data.left.AllSentences());
  out.right = model->VectorizeAll(out.data.right.AllSentences());
  return true;
}

int RunBlock(const CliArgs& args) {
  LoadedDataset loaded;
  if (!LoadAndEmbed(args, loaded)) return 1;
  core::BlockingOptions options;
  options.k = args.k;
  options.use_hnsw = args.hnsw;
  options.hnsw.seed = args.seed;
  const core::BlockingResult blocked =
      core::BlockCleanClean(loaded.left, loaded.right, options);
  const eval::PrfMetrics metrics =
      eval::EvaluateCleanCleanCandidates(blocked.candidates, loaded.truth);
  std::printf("%s  %s  k=%zu  recall=%.4f  index=%.3fs query=%.3fs\n",
              args.dataset.c_str(), args.hnsw ? "hnsw" : "exact", args.k,
              metrics.recall, blocked.index_seconds, blocked.query_seconds);
  return 0;
}

int RunPipeline(const CliArgs& args) {
  LoadedDataset loaded;
  if (!LoadAndEmbed(args, loaded)) return 1;
  core::PipelineOptions options;
  options.auto_threshold = args.auto_threshold;
  core::ErPipeline pipeline(options);
  const core::PipelineResult result =
      pipeline.RunOnVectors(loaded.left, loaded.right);
  std::vector<std::pair<uint32_t, uint32_t>> predicted;
  for (const auto& m : result.matches) predicted.emplace_back(m.left, m.right);
  const eval::PrfMetrics metrics =
      eval::EvaluateCleanCleanMatches(predicted, loaded.truth);
  std::printf(
      "%s  delta=%.3f  precision=%.4f recall=%.4f f1=%.4f  "
      "block=%.3fs match=%.3fs\n",
      args.dataset.c_str(), result.threshold_used, metrics.precision,
      metrics.recall, metrics.f1, result.blocking_seconds,
      result.matching_seconds);
  return 0;
}

serve::QueuePolicy PolicyFromFlag(const std::string& flag) {
  return flag == "fifo" ? serve::QueuePolicy::kFifo : serve::QueuePolicy::kEdf;
}

/// Prints the per-tenant rows of an EngineMetrics snapshot (skipped when
/// the engine saw no tenant-aware traffic).
void PrintTenantTable(const serve::EngineMetrics& metrics) {
  if (metrics.tenants.empty()) return;
  eval::Table table("per-tenant admission + latency");
  table.SetHeader({"tenant", "submitted", "throttled", "rejected", "completed",
                   "expired", "failed", "late", "p50_ms", "p99_ms"});
  for (const serve::TenantCounters& tenant : metrics.tenants) {
    table.AddRow({tenant.tenant, std::to_string(tenant.submitted),
                  std::to_string(tenant.throttled),
                  std::to_string(tenant.rejected),
                  std::to_string(tenant.completed),
                  std::to_string(tenant.expired),
                  std::to_string(tenant.failed),
                  std::to_string(tenant.deadline_misses),
                  eval::Table::Num(tenant.total_micros.Percentile(0.5) / 1e3, 2),
                  eval::Table::Num(tenant.total_micros.Percentile(0.99) / 1e3,
                                   2)});
  }
  table.Print();
}

int RunServeBench(const CliArgs& args) {
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return 1;
  }
  const auto kind = serve::IndexKindFromString(args.index_kind);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  const auto storage = serve::StorageKindFromString(args.storage);
  if (!storage.ok()) {
    std::fprintf(stderr, "%s\n", storage.status().ToString().c_str());
    return 1;
  }
  const datagen::CleanCleanDataset data =
      datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();

  // Snapshot acquisition: load when --snapshot names an existing valid
  // file, otherwise build from scratch (and persist for the next start).
  serve::Snapshot snapshot;
  bool loaded = false;
  WallTimer timer;
  if (!args.snapshot_path.empty()) {
    auto from_disk = serve::Snapshot::LoadFrom(args.snapshot_path);
    if (from_disk.ok()) {
      snapshot = std::move(from_disk).value();
      loaded = true;
      std::printf("snapshot: loaded %s in %.1f ms (%zu rows, %s)\n",
                  args.snapshot_path.c_str(), timer.Seconds() * 1e3,
                  snapshot.size(), IndexKindName(snapshot.manifest().kind));
    }
  }
  if (!loaded) {
    la::Matrix corpus = model->VectorizeAll(data.right.AllSentences());
    const double embed_seconds = timer.Restart();
    serve::SnapshotManifest manifest;
    manifest.model_code = model->info().code;
    manifest.default_k = static_cast<uint32_t>(args.k);
    manifest.kind = kind.value();
    manifest.dataset = args.dataset;
    index::HnswOptions hnsw_options;
    hnsw_options.seed = args.seed;
    index::LshOptions lsh_options;
    lsh_options.seed = args.seed;
    snapshot = serve::Snapshot::Build(std::move(manifest), std::move(corpus),
                                      hnsw_options, lsh_options);
    std::printf("snapshot: built from scratch in %.1f ms embed + %.1f ms "
                "index (%zu rows, %s)\n",
                embed_seconds * 1e3, timer.Seconds() * 1e3, snapshot.size(),
                IndexKindName(snapshot.manifest().kind));
    if (!args.snapshot_path.empty()) {
      const Status saved = snapshot.SaveTo(args.snapshot_path);
      if (!saved.ok()) {
        std::fprintf(stderr, "snapshot save failed: %s\n",
                     saved.ToString().c_str());
      } else {
        std::printf("snapshot: saved to %s\n", args.snapshot_path.c_str());
      }
    }
  }
  if (storage.value() == serve::StorageKind::kInt8 &&
      snapshot.manifest().storage != serve::StorageKind::kInt8) {
    const Status quantized = snapshot.Quantize();
    if (!quantized.ok()) {
      std::fprintf(stderr, "%s\n", quantized.ToString().c_str());
      return 1;
    }
    std::printf("snapshot: int8 scan tier built (storage=%s)\n",
                serve::StorageKindName(snapshot.manifest().storage));
  }

  // --trace-file swaps the synthetic open loop for a recorded workload,
  // replayed in timed mode against this engine (all tenants merged onto
  // it). Loaded before Create so the trace's quotas configure admission.
  Result<load::Trace> trace = Status::InvalidArgument("no trace");
  if (!args.trace_file.empty()) {
    trace = load::Trace::LoadFrom(args.trace_file);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace load refused: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
  }

  serve::EngineOptions options;
  options.k = args.k;
  options.max_queue = args.max_queue;
  options.max_batch = args.max_batch;
  options.max_wait_micros = args.wait_micros;
  options.workers = args.workers;
  options.queue_policy = PolicyFromFlag(args.policy);
  // Trace replay needs the mutable delta tier: traces carry upserts and
  // deletes, which a frozen engine would refuse.
  options.live = trace.ok();
  if (args.quota > 0) {
    // --quota gives every synthetic tenant (t0..tN-1) the same bucket.
    for (size_t t = 0; t < std::max<size_t>(1, args.tenants); ++t) {
      options.quotas.push_back(
          {"t" + std::to_string(t), args.quota, args.quota_burst});
    }
  } else if (trace.ok()) {
    options.quotas = load::QuotasFromTrace(trace.value());
  }
  auto engine = serve::Engine::Create(std::move(snapshot), model, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (!args.trace_path.empty()) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetEnabled(true);
  }

  if (trace.ok()) {
    load::ReplayOptions replay_options;
    replay_options.mode = load::ReplayOptions::Mode::kTimed;
    replay_options.speed = args.speed;
    replay_options.max_outstanding = args.outstanding;
    const auto report =
        load::Replay(trace.value(), {engine.value().get()}, replay_options);
    if (!report.ok()) {
      std::fprintf(stderr, "replay: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::string trace_prometheus;
    if (args.dump_metrics) {
      trace_prometheus = obs::Registry::Global().ToPrometheusText();
    }
    engine.value()->Stop();
    const load::ReplayReport& r = report.value();
    std::printf("trace replay (%s, policy=%s): %llu events in %.2f s — "
                "submitted=%llu throttled=%llu rejected=%llu "
                "completed=%llu expired=%llu failed=%llu\n",
                args.trace_file.c_str(), args.policy.c_str(),
                static_cast<unsigned long long>(r.events), r.wall_seconds,
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.throttled),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.expired),
                static_cast<unsigned long long>(r.failed));
    PrintTenantTable(engine.value()->Metrics());
    if (args.dump_metrics) std::printf("\n%s", trace_prometheus.c_str());
    return 0;
  }

  // Open-loop load: submissions fire on the offered-QPS schedule no matter
  // how the engine is doing, so overload shows up as rejections and
  // deadline misses instead of a silently slowed generator.
  const std::vector<std::string> queries = data.left.AllSentences();
  if (queries.empty()) {
    std::fprintf(stderr, "dataset has no query records\n");
    return 1;
  }
  const auto total =
      static_cast<size_t>(args.qps * args.duration_seconds + 0.5);
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  futures.reserve(total);
  const SteadyTime start = SteadyNow();
  for (size_t i = 0; i < total; ++i) {
    const SteadyTime at =
        AfterMicros(start, static_cast<int64_t>(i * 1e6 / args.qps));
    std::this_thread::sleep_until(at);
    serve::SubmitOptions submit;
    submit.deadline = AfterMicros(
        SteadyNow(), static_cast<int64_t>(args.deadline_ms * 1e3));
    // --tenants N tags submissions round-robin as t0..tN-1 so the
    // per-tenant ledger (and any --quota buckets) see a multi-tenant mix.
    if (args.tenants > 1 || args.quota > 0) {
      submit.tenant = "t" + std::to_string(i % std::max<size_t>(1, args.tenants));
    }
    auto submitted =
        engine.value()->Submit(queries[i % queries.size()], submit);
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
  }
  size_t ok = 0, missed = 0;
  for (auto& future : futures) {
    ok += future.get().ok() ? 1 : 0;
  }
  const double wall = MicrosBetween(start, SteadyNow()) / 1e6;
  // Scrape before Stop(): the engine unregisters its registry collector
  // when it stops.
  std::string prometheus;
  if (args.dump_metrics) prometheus = obs::Registry::Global().ToPrometheusText();
  engine.value()->Stop();
  const serve::EngineMetrics metrics = engine.value()->Metrics();
  missed = metrics.expired;

  if (!args.trace_path.empty()) {
    obs::Tracer::Global().SetEnabled(false);
    const auto spans = obs::Tracer::Global().Drain();
    const Status written = obs::WriteChromeTrace(spans, args.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
    } else {
      std::printf("trace: %zu spans -> %s (open at ui.perfetto.dev; %llu "
                  "dropped by ring wraparound)\n",
                  spans.size(), args.trace_path.c_str(),
                  static_cast<unsigned long long>(
                      obs::Tracer::Global().DroppedCount()));
    }
  }

  std::printf(
      "\n%s %s k=%zu: offered %.0f qps for %.1fs -> achieved %.0f qps\n",
      args.dataset.c_str(), args.index_kind.c_str(), args.k, args.qps,
      args.duration_seconds, static_cast<double>(ok) / wall);
  std::printf("accepted=%llu completed=%llu rejected=%llu throttled=%llu "
              "expired=%llu late=%llu batches=%llu mean_batch=%.1f\n",
              static_cast<unsigned long long>(metrics.submitted),
              static_cast<unsigned long long>(metrics.completed),
              static_cast<unsigned long long>(metrics.rejected),
              static_cast<unsigned long long>(metrics.throttled),
              static_cast<unsigned long long>(missed),
              static_cast<unsigned long long>(metrics.deadline_misses),
              static_cast<unsigned long long>(metrics.batches),
              metrics.batch_size.Mean());
  std::printf("health=%s failed=%llu retries=%llu fallbacks=%llu trips=%llu "
              "short_circuits=%llu reloads=%llu\n",
              serve::HealthName(metrics.health),
              static_cast<unsigned long long>(metrics.failed),
              static_cast<unsigned long long>(metrics.retries),
              static_cast<unsigned long long>(metrics.fallbacks),
              static_cast<unsigned long long>(metrics.breaker_trips),
              static_cast<unsigned long long>(metrics.short_circuits),
              static_cast<unsigned long long>(metrics.reloads));
  const auto dump = [](const char* name, const HistogramSnapshot& h) {
    std::printf("%-12s p50=%8.0f us  p99=%8.0f us  max=%8.0f us\n", name,
                h.Percentile(0.5), h.Percentile(0.99), h.max);
  };
  dump("queue", metrics.queue_micros);
  dump("embed", metrics.embed_micros);
  dump("query", metrics.query_micros);
  dump("postproc", metrics.postprocess_micros);
  dump("total", metrics.total_micros);
  PrintTenantTable(metrics);
  if (args.dump_metrics) std::printf("\n%s", prometheus.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Workload harness commands (DESIGN.md §16)
// ---------------------------------------------------------------------------

int RunTraceRecord(const CliArgs& args) {
  load::GeneratorOptions options;
  options.seed = args.seed;
  options.notes = args.notes;
  const size_t tenant_count = std::max<size_t>(1, args.tenants);
  for (size_t t = 0; t < tenant_count; ++t) {
    load::TenantSpec tenant;
    tenant.name = "t";
    tenant.name += std::to_string(t);
    tenant.corpus_rows = args.rows > 0 ? args.rows : 256;
    tenant.zipf_s = args.zipf;
    tenant.upsert_fraction = args.upserts;
    tenant.delete_fraction = args.deletes;
    tenant.deadline_micros = static_cast<int64_t>(args.deadline_ms * 1e3);
    if (args.quota > 0) {
      tenant.quota_rate_per_sec = args.quota;
      tenant.quota_burst = args.quota_burst;
    }
    options.tenants.push_back(std::move(tenant));
  }
  // --phases is a comma list; each entry becomes one equal-duration phase.
  // "cold" is a Poisson phase opened by a reload marker (the cold-start /
  // post-reload boundary).
  std::vector<std::string> names;
  for (size_t begin = 0; begin < args.phases.size();) {
    const size_t comma = args.phases.find(',', begin);
    const size_t end = comma == std::string::npos ? args.phases.size() : comma;
    if (end > begin) names.push_back(args.phases.substr(begin, end - begin));
    begin = end + 1;
  }
  if (names.empty()) names.push_back("poisson");
  for (const std::string& name : names) {
    load::PhaseSpec phase;
    if (name == "burst") {
      phase.arrival = load::PhaseSpec::Arrival::kBurst;
    } else if (name == "diurnal") {
      phase.arrival = load::PhaseSpec::Arrival::kDiurnal;
    } else if (name == "cold") {
      phase.reload_marker = true;
    } else if (name != "poisson") {
      std::fprintf(stderr, "unknown phase '%s'\n", name.c_str());
      return 1;
    }
    phase.rate_per_sec = args.qps;
    phase.duration_micros = static_cast<int64_t>(
        args.duration_seconds * 1e6 / static_cast<double>(names.size()));
    options.phases.push_back(phase);
  }

  const load::Trace trace = load::GenerateTrace(options);
  const Status saved = trace.SaveTo(args.dataset);
  if (!saved.ok()) {
    std::fprintf(stderr, "trace save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  size_t queries = 0, upserts = 0, deletes = 0, reloads = 0;
  for (const load::TraceEvent& event : trace.events) {
    switch (event.op) {
      case load::TraceEvent::Op::kQuery: ++queries; break;
      case load::TraceEvent::Op::kUpsert: ++upserts; break;
      case load::TraceEvent::Op::kDelete: ++deletes; break;
      case load::TraceEvent::Op::kReload: ++reloads; break;
    }
  }
  std::printf("trace: %zu events (%zu queries, %zu upserts, %zu deletes, "
              "%zu reloads) over %.2f s, %zu tenants -> %s\n",
              trace.events.size(), queries, upserts, deletes, reloads,
              static_cast<double>(trace.manifest.duration_micros) / 1e6,
              trace.manifest.tenants.size(), args.dataset.c_str());
  std::printf("trace: seed=%llu checksum=%016llx (same flags always "
              "reproduce these bytes)\n",
              static_cast<unsigned long long>(trace.manifest.seed),
              static_cast<unsigned long long>(trace.Checksum()));
  return 0;
}

/// Infers how many base corpus rows a tenant's trace expects: upsert keys
/// start exactly at the generator's corpus_rows, and query/delete base keys
/// stay below it.
uint64_t InferTenantRows(const load::Trace& trace, uint32_t tenant) {
  uint64_t min_upsert = 0;
  bool saw_upsert = false;
  uint64_t max_key = 0;
  for (const load::TraceEvent& event : trace.events) {
    if (event.tenant != tenant) continue;
    if (event.op == load::TraceEvent::Op::kUpsert) {
      min_upsert = saw_upsert ? std::min(min_upsert, event.key) : event.key;
      saw_upsert = true;
    } else if (event.op != load::TraceEvent::Op::kReload) {
      max_key = std::max(max_key, event.key);
    }
  }
  if (saw_upsert) return std::max<uint64_t>(1, min_upsert);
  return std::max<uint64_t>(16, max_key + 1);
}

int RunTraceReplay(const CliArgs& args) {
  WallTimer timer;
  auto loaded = load::Trace::LoadFrom(args.dataset);
  if (!loaded.ok()) {
    std::fprintf(stderr, "trace load refused: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const load::Trace& trace = loaded.value();
  std::printf("trace: %s loaded in %.1f ms (%zu events, %zu tenants, "
              "checksum %016llx)\n",
              args.dataset.c_str(), timer.Seconds() * 1e3,
              trace.events.size(), trace.manifest.tenants.size(),
              static_cast<unsigned long long>(trace.Checksum()));

  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  // One live engine per tenant, its base corpus sized from the trace's own
  // key space (or --rows), filled with deterministic synthetic rows.
  const size_t tenant_count = std::max<size_t>(1, trace.manifest.tenants.size());
  std::vector<std::unique_ptr<serve::Engine>> engines;
  std::vector<serve::Engine*> engine_ptrs;
  for (size_t t = 0; t < tenant_count; ++t) {
    const uint64_t rows =
        args.rows > 0 ? args.rows
                      : InferTenantRows(trace, static_cast<uint32_t>(t));
    std::vector<std::string> sentences;
    sentences.reserve(rows);
    for (uint64_t r = 0; r < rows; ++r) {
      sentences.push_back("corpus tenant " + std::to_string(t) + " row " +
                          std::to_string(r));
    }
    la::Matrix corpus = model->VectorizeAll(sentences);
    serve::SnapshotManifest manifest;
    manifest.model_code = model->info().code;
    manifest.default_k = static_cast<uint32_t>(args.k);
    manifest.kind = serve::IndexKind::kExact;
    manifest.dataset = trace.manifest.tenants.empty()
                           ? "trace"
                           : trace.manifest.tenants[t].dataset;
    serve::Snapshot snapshot = serve::Snapshot::Build(
        std::move(manifest), std::move(corpus), {}, {});
    serve::EngineOptions options;
    options.k = args.k;
    options.live = true;
    options.workers = args.workers;
    options.max_batch = args.max_batch;
    options.max_wait_micros = args.wait_micros;
    options.max_queue = args.max_queue;
    options.queue_policy = PolicyFromFlag(args.policy);
    options.quotas = load::QuotasFromTrace(trace);
    auto engine = serve::Engine::Create(std::move(snapshot), model, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    engines.push_back(std::move(engine).value());
    engine_ptrs.push_back(engines.back().get());
  }

  load::ReplayOptions replay_options;
  replay_options.mode = args.timed ? load::ReplayOptions::Mode::kTimed
                                   : load::ReplayOptions::Mode::kVirtual;
  replay_options.speed = args.speed;
  replay_options.max_outstanding = args.outstanding;
  const auto report = load::Replay(trace, engine_ptrs, replay_options);
  if (!report.ok()) {
    std::fprintf(stderr, "replay: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const load::ReplayReport& r = report.value();
  std::printf("\nreplay (%s): %llu events in %.2f s\n",
              args.timed ? "timed" : "virtual",
              static_cast<unsigned long long>(r.events), r.wall_seconds);
  std::printf("decisions: submitted=%llu throttled=%llu rejected=%llu "
              "(skipped unmapped deletes=%llu)\n",
              static_cast<unsigned long long>(r.submitted),
              static_cast<unsigned long long>(r.throttled),
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(r.unmapped_deletes));
  std::printf("outcomes:  completed=%llu expired=%llu failed=%llu\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.expired),
              static_cast<unsigned long long>(r.failed));
  std::printf("identity:  admission_digest=%016llx signature=%016llx\n",
              static_cast<unsigned long long>(r.admission_digest),
              static_cast<unsigned long long>(r.Signature()));
  for (auto& engine : engines) engine->Stop();
  for (size_t t = 0; t < engines.size(); ++t) {
    std::printf("\nengine %zu (tenant %s):\n", t,
                t < trace.manifest.tenants.size()
                    ? trace.manifest.tenants[t].name.c_str()
                    : "merged");
    PrintTenantTable(engines[t]->Metrics());
  }
  return 0;
}

std::string ShardPath(const std::string& prefix, size_t shard, size_t count) {
  return prefix + ".s" + std::to_string(shard) + "-of-" +
         std::to_string(count) + ".snap";
}

/// Merged per-shard answers straight off the shard snapshots (no engines):
/// the oracle-comparison path snapshot-shard and the sharded serve-bench
/// spot check share.
std::vector<std::vector<index::Neighbor>> MergeAcrossShards(
    const std::vector<serve::Snapshot>& shards, const la::Matrix& queries,
    size_t k) {
  std::vector<std::vector<std::vector<index::Neighbor>>> per_shard;
  per_shard.reserve(shards.size());
  for (const serve::Snapshot& shard : shards) {
    auto lists = shard.QueryBatch(queries, k);
    for (auto& list : lists) {
      index::RemapToGlobal(list, shard.manifest().row_offset,
                           shard.manifest().shard_count);
    }
    per_shard.push_back(std::move(lists));
  }
  std::vector<std::vector<index::Neighbor>> merged(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    std::vector<std::vector<index::Neighbor>> lists;
    lists.reserve(shards.size());
    for (auto& shard_lists : per_shard) {
      lists.push_back(std::move(shard_lists[q]));
    }
    merged[q] = serve::MergeTopK(lists, k);
  }
  return merged;
}

int RunSnapshotShard(const CliArgs& args) {
  if (args.shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return 1;
  }
  const auto kind = serve::IndexKindFromString(args.index_kind);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  const auto storage = serve::StorageKindFromString(args.storage);
  if (!storage.ok()) {
    std::fprintf(stderr, "%s\n", storage.status().ToString().c_str());
    return 1;
  }
  const std::string prefix =
      args.prefix.empty() ? args.dataset + "_shards" : args.prefix;
  const datagen::CleanCleanDataset data =
      datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  WallTimer timer;
  const la::Matrix corpus = model->VectorizeAll(data.right.AllSentences());
  const double embed_seconds = timer.Restart();

  serve::SnapshotManifest base;
  base.model_code = model->info().code;
  base.default_k = static_cast<uint32_t>(args.k);
  base.kind = kind.value();
  base.dataset = args.dataset;
  index::HnswOptions hnsw_options;
  hnsw_options.seed = args.seed;
  index::LshOptions lsh_options;
  lsh_options.seed = args.seed;
  auto built = serve::BuildShardSnapshots(
      base, corpus, static_cast<uint32_t>(args.shards), hnsw_options,
      lsh_options);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> paths;
  for (size_t s = 0; s < built.value().size(); ++s) {
    serve::Snapshot& shard = built.value()[s];
    if (storage.value() == serve::StorageKind::kInt8) {
      const Status quantized = shard.Quantize();
      if (!quantized.ok()) {
        std::fprintf(stderr, "%s\n", quantized.ToString().c_str());
        return 1;
      }
    }
    paths.push_back(ShardPath(prefix, s, args.shards));
    const Status saved = shard.SaveTo(paths.back());
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("shard %zu/%zu: %llu rows -> %s\n", s, args.shards,
                static_cast<unsigned long long>(shard.manifest().rows),
                paths.back().c_str());
  }
  std::printf("built %zu shards in %.1f ms embed + %.1f ms index+save\n",
              args.shards, embed_seconds * 1e3, timer.Restart() * 1e3);

  // Round-trip validation: the set we just wrote must load back as a
  // coherent fleet (fail-closed on any mismatch).
  auto reloaded = serve::LoadShardSet(paths);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "shard set round trip FAILED: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round trip: %zu shards load as a coherent set\n",
              reloaded.value().size());

  // Exact indexes admit a bit-identity check against the unsharded oracle;
  // approximate indexes (per-shard graphs/tables differ structurally from
  // one global build) get only the structural round trip above.
  if (kind.value() == serve::IndexKind::kExact && corpus.rows() > 0) {
    const auto query_sentences = data.left.AllSentences();
    const size_t probe = std::min<size_t>(32, query_sentences.size());
    const la::Matrix queries = model->VectorizeAll(
        {query_sentences.begin(), query_sentences.begin() + probe});
    serve::Snapshot oracle = serve::Snapshot::Build(base, corpus);
    const auto expect = oracle.QueryBatch(queries, args.k);
    const auto merged = MergeAcrossShards(reloaded.value(), queries, args.k);
    for (size_t q = 0; q < probe; ++q) {
      if (merged[q].size() != expect[q].size()) {
        std::fprintf(stderr, "spot-check FAILED: query %zu merged %zu "
                     "neighbors, oracle %zu\n",
                     q, merged[q].size(), expect[q].size());
        return 1;
      }
      for (size_t j = 0; j < merged[q].size(); ++j) {
        if (merged[q][j].id != expect[q][j].id ||
            merged[q][j].distance != expect[q][j].distance) {
          std::fprintf(stderr, "spot-check FAILED: query %zu rank %zu "
                       "diverges from the unsharded oracle\n", q, j);
          return 1;
        }
      }
    }
    std::printf("spot-check: %zu queries merge bit-identical to the "
                "unsharded oracle\n", probe);
  } else {
    std::printf("spot-check: skipped (bit-identity holds for exact "
                "indexes only)\n");
  }
  return 0;
}

int RunServeBenchSharded(const CliArgs& args) {
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return 1;
  }
  const auto kind = serve::IndexKindFromString(args.index_kind);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  const auto storage = serve::StorageKindFromString(args.storage);
  if (!storage.ok()) {
    std::fprintf(stderr, "%s\n", storage.status().ToString().c_str());
    return 1;
  }
  const datagen::CleanCleanDataset data =
      datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();

  // Shard-set acquisition: --snapshot names the set's prefix; load when all
  // N files exist (fail-closed set validation), else build and persist.
  std::vector<serve::Snapshot> shards;
  WallTimer timer;
  serve::SnapshotManifest base;
  base.model_code = model->info().code;
  base.default_k = static_cast<uint32_t>(args.k);
  base.kind = kind.value();
  base.dataset = args.dataset;
  bool loaded = false;
  if (!args.snapshot_path.empty()) {
    std::vector<std::string> paths;
    bool all_exist = true;
    for (size_t s = 0; s < args.shards; ++s) {
      paths.push_back(ShardPath(args.snapshot_path, s, args.shards));
      std::FILE* probe = std::fopen(paths.back().c_str(), "rb");
      if (probe == nullptr) {
        all_exist = false;
      } else {
        std::fclose(probe);
      }
    }
    if (all_exist) {
      auto set = serve::LoadShardSet(paths);
      if (!set.ok()) {
        std::fprintf(stderr, "shard set rejected: %s\n",
                     set.status().ToString().c_str());
        return 1;
      }
      shards = std::move(set).value();
      loaded = true;
      std::printf("shard set: loaded %zu shards from %s.s*.snap in %.1f ms\n",
                  shards.size(), args.snapshot_path.c_str(),
                  timer.Restart() * 1e3);
    }
  }
  if (!loaded) {
    la::Matrix corpus = model->VectorizeAll(data.right.AllSentences());
    index::HnswOptions hnsw_options;
    hnsw_options.seed = args.seed;
    index::LshOptions lsh_options;
    lsh_options.seed = args.seed;
    auto built = serve::BuildShardSnapshots(
        base, corpus, static_cast<uint32_t>(args.shards), hnsw_options,
        lsh_options);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    shards = std::move(built).value();
    for (size_t s = 0; s < shards.size(); ++s) {
      if (storage.value() == serve::StorageKind::kInt8) {
        const Status quantized = shards[s].Quantize();
        if (!quantized.ok()) {
          std::fprintf(stderr, "%s\n", quantized.ToString().c_str());
          return 1;
        }
      }
      if (!args.snapshot_path.empty()) {
        const Status saved =
            shards[s].SaveTo(ShardPath(args.snapshot_path, s, args.shards));
        if (!saved.ok()) {
          std::fprintf(stderr, "shard save failed: %s\n",
                       saved.ToString().c_str());
        }
      }
    }
    std::printf("shard set: built %zu shards in %.1f ms\n", shards.size(),
                timer.Restart() * 1e3);
  }

  // N x R engines (Snapshot is copyable — mmap'ed sets share one mapping),
  // then the Router on top. Engine k matches the router's merge k.
  // Recovery drill: --kill-replica s:r takes one replica down a third of
  // the way into the run while mutations keep flowing; --rejoin-replica
  // brings it back at two thirds and the run only exits 0 once catch-up
  // converged the fleet. Needs live engines (the mutation path) and R >= 2
  // so the group keeps serving through the outage.
  const bool drill = !args.kill_replica.empty();
  uint32_t kill_shard = 0;
  size_t kill_rep = 0;
  if (drill) {
    int s = -1, r = -1;
    if (std::sscanf(args.kill_replica.c_str(), "%d:%d", &s, &r) != 2 ||
        s < 0 || r < 0 || static_cast<size_t>(s) >= args.shards ||
        static_cast<size_t>(r) >= args.replicas) {
      std::fprintf(stderr,
                   "--kill-replica wants s:r with s < %zu and r < %zu\n",
                   args.shards, args.replicas);
      return 1;
    }
    if (args.replicas < 2) {
      std::fprintf(stderr, "--kill-replica needs --replicas >= 2\n");
      return 1;
    }
    kill_shard = static_cast<uint32_t>(s);
    kill_rep = static_cast<size_t>(r);
  }

  serve::EngineOptions engine_options;
  engine_options.k = args.k;
  engine_options.max_queue = args.max_queue;
  engine_options.max_batch = args.max_batch;
  engine_options.max_wait_micros = args.wait_micros;
  engine_options.live = drill;
  std::vector<std::unique_ptr<serve::Engine>> engines;
  for (size_t r = 0; r < std::max<size_t>(1, args.replicas); ++r) {
    for (const serve::Snapshot& shard : shards) {
      auto engine = serve::Engine::Create(shard, model, engine_options);
      if (!engine.ok()) {
        std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        return 1;
      }
      engines.push_back(std::move(engine).value());
    }
  }
  serve::RouterOptions router_options;
  router_options.k = args.k;
  router_options.max_queue = args.max_queue;
  router_options.max_batch = args.max_batch;
  router_options.max_wait_micros = args.wait_micros;
  router_options.workers = args.workers;
  auto router =
      serve::Router::Create(std::move(engines), model, router_options);
  if (!router.ok()) {
    std::fprintf(stderr, "%s\n", router.status().ToString().c_str());
    return 1;
  }
  std::printf("router: %u shards x %zu replicas, health=%s\n",
              router.value()->shard_count(),
              router.value()->replica_count(0),
              serve::HealthName(router.value()->health()));

  // Merged-result spot check through the live router: for exact indexes a
  // handful of routed queries must answer bit-identically to the merge
  // computed straight off the shard snapshots.
  if (kind.value() == serve::IndexKind::kExact) {
    const auto query_sentences = data.left.AllSentences();
    const size_t probe = std::min<size_t>(8, query_sentences.size());
    if (probe > 0) {
      const la::Matrix probe_vectors = model->VectorizeAll(
          {query_sentences.begin(), query_sentences.begin() + probe});
      const auto expect = MergeAcrossShards(shards, probe_vectors, args.k);
      std::vector<std::future<Result<serve::RouterReply>>> checks;
      for (size_t q = 0; q < probe; ++q) {
        auto submitted = router.value()->Submit(query_sentences[q]);
        if (!submitted.ok()) {
          std::fprintf(stderr, "spot-check submit failed: %s\n",
                       submitted.status().ToString().c_str());
          return 1;
        }
        checks.push_back(std::move(submitted).value());
      }
      for (size_t q = 0; q < probe; ++q) {
        auto reply = checks[q].get();
        if (!reply.ok() || reply.value().partial) {
          std::fprintf(stderr, "spot-check FAILED: query %zu not fully "
                       "answered\n", q);
          return 1;
        }
        const auto& got = reply.value().neighbors;
        if (got.size() != expect[q].size()) {
          std::fprintf(stderr, "spot-check FAILED: query %zu size "
                       "mismatch\n", q);
          return 1;
        }
        for (size_t j = 0; j < got.size(); ++j) {
          if (got[j].id != expect[q][j].id ||
              got[j].distance != expect[q][j].distance) {
            std::fprintf(stderr, "spot-check FAILED: query %zu rank %zu "
                         "diverges\n", q, j);
            return 1;
          }
        }
      }
      std::printf("spot-check: %zu routed queries match the shard merge\n",
                  probe);
    }
  }

  if (!args.trace_path.empty()) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetEnabled(true);
  }

  const std::vector<std::string> queries = data.left.AllSentences();
  if (queries.empty()) {
    std::fprintf(stderr, "dataset has no query records\n");
    return 1;
  }
  const auto total =
      static_cast<size_t>(args.qps * args.duration_seconds + 0.5);
  const size_t kill_at = drill ? total / 3 : total + 1;
  const size_t rejoin_at =
      (drill && args.rejoin_replica) ? (2 * total) / 3 : total + 1;
  size_t missed_mutations = 0;
  std::vector<std::future<Result<serve::RouterReply>>> futures;
  futures.reserve(total);
  const SteadyTime start = SteadyNow();
  for (size_t i = 0; i < total; ++i) {
    const SteadyTime at =
        AfterMicros(start, static_cast<int64_t>(i * 1e6 / args.qps));
    std::this_thread::sleep_until(at);
    if (i == kill_at) {
      const Status down = router.value()->KillReplica(kill_shard, kill_rep);
      std::printf("drill: killed replica %u:%zu at query %zu (%s)\n",
                  kill_shard, kill_rep, i,
                  down.ok() ? "ok" : down.ToString().c_str());
    }
    if (i == rejoin_at) {
      const Status up = router.value()->RejoinReplica(kill_shard, kill_rep);
      std::printf("drill: rejoined replica %u:%zu at query %zu after %zu "
                  "missed mutations (%s)\n",
                  kill_shard, kill_rep, i, missed_mutations,
                  up.ok() ? "ok" : up.ToString().c_str());
    }
    // The write stream never pauses: every 8th tick upserts, so a downed
    // replica genuinely falls behind and has something to catch up on.
    if (drill && i % 8 == 0) {
      auto admitted = router.value()->Upsert(
          "drill upsert " + std::to_string(i) + " " +
          queries[i % queries.size()]);
      if (admitted.ok() && i >= kill_at && i < rejoin_at) ++missed_mutations;
    }
    auto submitted = router.value()->Submit(
        queries[i % queries.size()],
        AfterMicros(SteadyNow(),
                    static_cast<int64_t>(args.deadline_ms * 1e3)));
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
  }
  size_t ok = 0, partial = 0;
  for (auto& future : futures) {
    auto reply = future.get();
    if (reply.ok()) {
      ++ok;
      partial += reply.value().partial ? 1 : 0;
    }
  }
  const double wall = MicrosBetween(start, SteadyNow()) / 1e6;

  // Drill verdict (before Stop(), which joins the recovery worker): with a
  // rejoin requested the fleet must converge — catch-up replay or resync
  // finishing with every replica active — or the whole run fails closed.
  bool converged = true;
  if (drill && args.rejoin_replica) {
    const SteadyTime deadline = AfterMicros(SteadyNow(), 15'000'000);
    while (!router.value()->Converged() &&
           MicrosBetween(SteadyNow(), deadline) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    converged = router.value()->Converged();
  }
  std::string prometheus;
  if (args.dump_metrics) {
    prometheus = obs::Registry::Global().ToPrometheusText();
  }
  router.value()->Stop();
  const serve::RouterMetrics metrics = router.value()->Metrics();

  if (!args.trace_path.empty()) {
    obs::Tracer::Global().SetEnabled(false);
    const auto spans = obs::Tracer::Global().Drain();
    const Status written = obs::WriteChromeTrace(spans, args.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
    } else {
      std::printf("trace: %zu spans -> %s\n", spans.size(),
                  args.trace_path.c_str());
    }
  }

  std::printf(
      "\n%s %s k=%zu shards=%zu replicas=%zu: offered %.0f qps for %.1fs -> "
      "achieved %.0f qps\n",
      args.dataset.c_str(), args.index_kind.c_str(), args.k, args.shards,
      args.replicas, args.qps, args.duration_seconds,
      static_cast<double>(ok) / wall);
  std::printf("accepted=%llu completed=%llu rejected=%llu expired=%llu "
              "late=%llu batches=%llu mean_batch=%.1f\n",
              static_cast<unsigned long long>(metrics.submitted),
              static_cast<unsigned long long>(metrics.completed),
              static_cast<unsigned long long>(metrics.rejected),
              static_cast<unsigned long long>(metrics.expired),
              static_cast<unsigned long long>(metrics.deadline_misses),
              static_cast<unsigned long long>(metrics.batches),
              metrics.batch_size.Mean());
  std::printf("failed=%llu partial=%llu shards_degraded=%llu "
              "sibling_retries=%llu embed_retries=%llu\n",
              static_cast<unsigned long long>(metrics.failed),
              static_cast<unsigned long long>(metrics.partial),
              static_cast<unsigned long long>(metrics.shards_degraded),
              static_cast<unsigned long long>(metrics.sibling_retries),
              static_cast<unsigned long long>(metrics.retries));
  if (drill) {
    std::printf(
        "drill: availability=%.4f quarantines=%llu catchups=%llu "
        "resyncs=%llu replayed=%llu digest_mismatches=%llu converged=%s\n",
        futures.empty() ? 0.0
                        : static_cast<double>(ok - partial) / futures.size(),
        static_cast<unsigned long long>(metrics.quarantines),
        static_cast<unsigned long long>(metrics.catchups),
        static_cast<unsigned long long>(metrics.resyncs),
        static_cast<unsigned long long>(metrics.replayed_mutations),
        static_cast<unsigned long long>(metrics.digest_mismatches),
        converged ? "yes" : "NO");
    if (!converged) {
      std::fprintf(stderr,
                   "drill FAILED: replica %u:%zu never converged after "
                   "rejoin\n",
                   kill_shard, kill_rep);
      return 1;
    }
  }
  const auto dump = [](const char* name, const HistogramSnapshot& h) {
    std::printf("%-12s p50=%8.0f us  p99=%8.0f us  max=%8.0f us\n", name,
                h.Percentile(0.5), h.Percentile(0.99), h.max);
  };
  dump("queue", metrics.queue_micros);
  dump("embed", metrics.embed_micros);
  dump("fanout", metrics.fanout_micros);
  dump("gather", metrics.gather_micros);
  dump("merge", metrics.merge_micros);
  dump("total", metrics.total_micros);
  for (size_t s = 0; s < metrics.shard_micros.size(); ++s) {
    for (size_t r = 0; r < metrics.shard_micros[s].size(); ++r) {
      const auto& h = metrics.shard_micros[s][r];
      std::printf("shard=%zu replica=%zu p50=%8.0f us  p99=%8.0f us  "
                  "count=%llu\n",
                  s, r, h.Percentile(0.5), h.Percentile(0.99),
                  static_cast<unsigned long long>(h.count));
    }
  }
  if (args.dump_metrics) std::printf("\n%s", prometheus.c_str());
  return 0;
}

/// Shared workload for metrics-dump / trace-dump: snapshot + engine over
/// the dataset's right side, then a closed-loop submit of `args.requests`
/// queries from the left side. Returns the engine so callers can scrape or
/// drain before stopping it; null on failure.
std::unique_ptr<serve::Engine> RunSmallServe(const CliArgs& args) {
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return nullptr;
  }
  const auto kind = serve::IndexKindFromString(args.index_kind);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return nullptr;
  }
  const datagen::CleanCleanDataset data =
      datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();
  la::Matrix corpus = model->VectorizeAll(data.right.AllSentences());
  serve::SnapshotManifest manifest;
  manifest.model_code = model->info().code;
  manifest.default_k = static_cast<uint32_t>(args.k);
  manifest.kind = kind.value();
  manifest.dataset = args.dataset;
  index::HnswOptions hnsw_options;
  hnsw_options.seed = args.seed;
  index::LshOptions lsh_options;
  lsh_options.seed = args.seed;
  serve::Snapshot snapshot = serve::Snapshot::Build(
      std::move(manifest), std::move(corpus), hnsw_options, lsh_options);

  serve::EngineOptions options;
  options.k = args.k;
  options.max_batch = args.max_batch;
  options.max_wait_micros = args.wait_micros;
  options.workers = args.workers;
  auto engine = serve::Engine::Create(std::move(snapshot), model, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return nullptr;
  }
  const std::vector<std::string> queries = data.left.AllSentences();
  if (queries.empty()) {
    std::fprintf(stderr, "dataset has no query records\n");
    return nullptr;
  }
  std::vector<std::future<Result<serve::QueryReply>>> futures;
  futures.reserve(args.requests);
  for (size_t i = 0; i < args.requests; ++i) {
    auto submitted = engine.value()->Submit(queries[i % queries.size()]);
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) future.get();
  return std::move(engine).value();
}

int RunMetricsDump(const CliArgs& args) {
  auto engine = RunSmallServe(args);
  if (engine == nullptr) return 1;
  // Scrape while the engine is live (Stop unregisters its collector).
  const std::string text = args.json
                               ? obs::Registry::Global().ToJson()
                               : obs::Registry::Global().ToPrometheusText();
  engine->Stop();
  std::fputs(text.c_str(), stdout);
  return 0;
}

int RunTraceDump(const CliArgs& args) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  auto engine = RunSmallServe(args);
  tracer.SetEnabled(false);
  if (engine == nullptr) return 1;
  engine->Stop();
  const auto spans = tracer.Drain();
  const Status written = obs::WriteChromeTrace(spans, args.out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("trace: %zu spans -> %s (open at ui.perfetto.dev; %llu dropped "
              "by ring wraparound)\n\n",
              spans.size(), args.out_path.c_str(),
              static_cast<unsigned long long>(tracer.DroppedCount()));
  std::printf("%-28s %8s %14s %14s\n", "stage", "spans", "total_ms",
              "self_ms");
  for (const obs::StageBreakdownRow& row : obs::StageBreakdown(spans)) {
    std::printf("%-28s %8llu %14.3f %14.3f\n", row.name,
                static_cast<unsigned long long>(row.spans),
                row.total_micros / 1e3, row.self_micros / 1e3);
  }
  return 0;
}

// snapshot-convert takes two positional paths instead of a dataset id, so
// it parses its own tail rather than going through ParseCli.
int RunSnapshotConvert(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  std::string quantize;
  std::string to = "v2";
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quantize" && i + 1 < argc) {
      quantize = argv[++i];
    } else if (arg == "--to" && i + 1 < argc) {
      to = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (!quantize.empty() && quantize != "int8") {
    std::fprintf(stderr, "--quantize supports only int8, not '%s'\n",
                 quantize.c_str());
    return 2;
  }
  serve::SnapshotFormat format = serve::SnapshotFormat::kV2;
  if (to == "v1") {
    format = serve::SnapshotFormat::kV1;
  } else if (to != "v2") {
    std::fprintf(stderr, "--to must be v1 or v2, not '%s'\n", to.c_str());
    return 2;
  }

  WallTimer timer;
  auto loaded = serve::Snapshot::LoadFrom(in_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  serve::Snapshot snapshot = std::move(loaded).value();
  const double load_seconds = timer.Restart();
  if (!quantize.empty()) {
    const Status quantized = snapshot.Quantize();
    if (!quantized.ok()) {
      std::fprintf(stderr, "%s\n", quantized.ToString().c_str());
      return 1;
    }
  }
  const Status saved = snapshot.SaveTo(out_path, format);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  const serve::SnapshotManifest& manifest = snapshot.manifest();
  std::printf("converted %s -> %s (%s)\n", in_path.c_str(), out_path.c_str(),
              format == serve::SnapshotFormat::kV2 ? "EMBS0002" : "EMBS0001");
  std::printf("  kind=%s storage=%s rows=%llu dim=%u dataset=%s\n",
              IndexKindName(manifest.kind),
              serve::StorageKindName(manifest.storage),
              static_cast<unsigned long long>(manifest.rows), manifest.dim,
              manifest.dataset.c_str());
  std::printf("  load %.1f ms (%s) + convert/save %.1f ms\n",
              load_seconds * 1e3,
              snapshot.bytes_mapped() > 0 ? "mmap" : "heap",
              timer.Seconds() * 1e3);
  return 0;
}

/// Streaming ER over the live corpus (DESIGN.md §14). Records stream one
/// at a time into an engine that started from an EMPTY snapshot: each
/// record is first resolved against the corpus so far (query through the
/// batcher; best cross-side neighbor with sim >= --threshold merges the
/// two clusters), then admitted with Engine::Upsert so later arrivals can
/// match it. A background Compactor keeps folding the delta tier into
/// fresh base snapshots while the stream is live, so the scenario
/// exercises query/upsert/compaction concurrency end to end. Pairwise
/// precision/recall/F1 are maintained incrementally (core::StreamClusters)
/// and printed at checkpoints plus a final greppable summary line.
int RunStreamDedup(const CliArgs& args) {
  const auto spec = datagen::CleanCleanSpecById(args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return 2;
  }
  const datagen::CleanCleanDataset data =
      datagen::GenerateCleanClean(spec.value(), args.scale, args.seed);
  eval::GroundTruth truth;
  for (const auto& match : data.matches) {
    truth.AddCleanCleanPair(match.first, match.second);
  }
  auto model = std::shared_ptr<embed::EmbeddingModel>(
      embed::CreateModel(embed::ModelId::kSGtrT5));
  model->Initialize();

  // The live corpus starts EMPTY: zero rows, but the manifest carries the
  // model's dim so the engine's compatibility check still holds.
  serve::SnapshotManifest manifest;
  manifest.model_code = model->info().code;
  manifest.default_k = static_cast<uint32_t>(args.k);
  manifest.kind = serve::IndexKind::kExact;
  manifest.dataset = args.dataset;
  serve::Snapshot empty = serve::Snapshot::Build(
      std::move(manifest), la::Matrix(0, model->info().dim));

  serve::EngineOptions options;
  options.k = args.k;
  options.max_batch = args.max_batch;
  options.max_wait_micros = args.wait_micros;
  options.workers = args.workers;
  options.live = true;
  auto created = serve::Engine::Create(std::move(empty), model, options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::Engine> engine = std::move(created).value();

  // Interleave the two collections so matches arrive from both directions.
  struct StreamRecord {
    bool left = false;
    uint32_t index = 0;
    const std::string* sentence = nullptr;
  };
  const std::vector<std::string> left = data.left.AllSentences();
  const std::vector<std::string> right = data.right.AllSentences();
  std::vector<StreamRecord> streamed;
  streamed.reserve(left.size() + right.size());
  for (size_t i = 0; i < std::max(left.size(), right.size()); ++i) {
    if (i < right.size()) streamed.push_back({false, static_cast<uint32_t>(i),
                                              &right[i]});
    if (i < left.size()) streamed.push_back({true, static_cast<uint32_t>(i),
                                             &left[i]});
  }
  const size_t report_every =
      args.report_every > 0 ? args.report_every
                            : std::max<size_t>(64, streamed.size() / 5);

  // Background compaction runs against the same engine the stream mutates;
  // every fold hot-swaps the base under live traffic.
  const std::string base_path = args.snapshot_path.empty()
                                    ? "stream-dedup.base.snap"
                                    : args.snapshot_path;
  stream::CompactorOptions compactor_options;
  compactor_options.max_delta_rows =
      args.compact_rows > 0 ? args.compact_rows : ~size_t{0};
  compactor_options.max_tombstones = compactor_options.max_delta_rows;
  compactor_options.interval_micros = 5'000;
  stream::Compactor compactor(
      [&engine] { return engine->LiveStats(); },
      [&engine, &base_path] { return engine->Compact(base_path); },
      compactor_options);
  if (args.compact_rows > 0) compactor.Start();

  core::StreamClusters clusters(truth);
  // Global id -> (left?, index within its side). Ids survive compaction
  // unchanged, so a flat vector indexed by id stays correct for the whole
  // stream.
  std::vector<std::pair<bool, uint32_t>> by_gid;
  size_t merges = 0, query_failures = 0, upsert_failures = 0;
  WallTimer timer;
  for (size_t n = 0; n < streamed.size(); ++n) {
    const StreamRecord& record = streamed[n];
    // Resolve against the corpus so far. The neighbor list is sorted by
    // ascending distance, so the first cross-side survivor is the best.
    bool matched = false;
    uint64_t best_gid = 0;
    auto submitted = engine->Submit(*record.sentence);
    if (submitted.ok()) {
      auto reply = submitted.value().get();
      if (reply.ok()) {
        for (const index::Neighbor& neighbor : reply.value().neighbors) {
          const uint64_t gid = neighbor.id;
          if (gid >= by_gid.size() || by_gid[gid].first == record.left) {
            continue;
          }
          const double sim = (2.0 - neighbor.distance) / 2.0;
          if (sim >= args.threshold) {
            matched = true;
            best_gid = gid;
          }
          break;  // best cross-side candidate decides, match or not
        }
      } else {
        ++query_failures;
      }
    } else {
      ++query_failures;
    }
    // Always admit the record: both sides live in the corpus, so a future
    // duplicate can resolve against either cluster member.
    auto upserted = engine->Upsert(*record.sentence);
    if (!upserted.ok()) {
      ++upsert_failures;
      continue;
    }
    auto outcome = upserted.value().get();
    if (!outcome.ok()) {
      ++upsert_failures;
      continue;
    }
    const uint64_t gid = outcome.value().id;
    if (gid >= by_gid.size()) by_gid.resize(gid + 1, {false, 0});
    by_gid[gid] = {record.left, record.index};
    clusters.Add(gid, record.left, record.index);
    if (matched) {
      clusters.Merge(gid, best_gid);
      ++merges;
    }
    if ((n + 1) % report_every == 0 && n + 1 < streamed.size()) {
      const eval::PrfMetrics m = clusters.Metrics();
      const stream::LiveStats live = engine->LiveStats();
      std::printf("  [%6zu/%zu] P=%.4f R=%.4f F1=%.4f  (delta=%llu "
                  "tombstones=%llu generation=%llu)\n",
                  n + 1, streamed.size(), m.precision, m.recall, m.f1,
                  static_cast<unsigned long long>(live.delta_rows),
                  static_cast<unsigned long long>(live.tombstones),
                  static_cast<unsigned long long>(live.base_generation));
    }
  }
  const double seconds = timer.Seconds();
  compactor.Stop();

  const eval::PrfMetrics metrics = clusters.Metrics();
  const stream::LiveStats live = engine->LiveStats();
  const serve::EngineMetrics em = engine->Metrics();
  engine->Stop();
  std::remove(base_path.c_str());

  std::printf("stream-dedup %s scale=%.2f: %zu records in %.2fs "
              "(%.0f rec/s), %zu merges, %zu query failures, %zu upsert "
              "failures\n",
              args.dataset.c_str(), args.scale, streamed.size(), seconds,
              streamed.size() / std::max(seconds, 1e-9), merges,
              query_failures, upsert_failures);
  std::printf("  live corpus: base=%llu delta=%llu tombstones=%llu "
              "generation=%llu; compactions=%llu (%llu failed)\n",
              static_cast<unsigned long long>(live.base_rows),
              static_cast<unsigned long long>(live.delta_rows),
              static_cast<unsigned long long>(live.tombstones),
              static_cast<unsigned long long>(live.base_generation),
              static_cast<unsigned long long>(em.compactions),
              static_cast<unsigned long long>(em.compaction_failures));
  // Counter identity must close now that the stream has drained.
  if (em.submitted != em.completed + em.expired + em.failed) {
    std::fprintf(stderr,
                 "counter identity violated: submitted=%llu != "
                 "completed=%llu + expired=%llu + failed=%llu\n",
                 static_cast<unsigned long long>(em.submitted),
                 static_cast<unsigned long long>(em.completed),
                 static_cast<unsigned long long>(em.expired),
                 static_cast<unsigned long long>(em.failed));
    return 1;
  }
  // A stream that admitted nothing (e.g. the delta tier refusing service)
  // has no resolution result to report — fail instead of printing F1=0.
  if (!streamed.empty() && upsert_failures == streamed.size()) {
    std::fprintf(stderr, "no records admitted: all %zu upserts failed\n",
                 upsert_failures);
    return 1;
  }
  std::printf("stream-dedup final precision=%.4f recall=%.4f f1=%.4f "
              "(threshold=%.2f, %llu predicted pairs, %llu true)\n",
              metrics.precision, metrics.recall, metrics.f1, args.threshold,
              static_cast<unsigned long long>(clusters.predicted_pairs()),
              static_cast<unsigned long long>(clusters.true_pairs()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Fault-injection builds honor $EMBER_FAILPOINTS (see common/failpoint.h
  // for the spec grammar), so resilience behavior is reproducible from the
  // command line without recompiling.
  const Status failpoints = fail::ConfigureFromEnv();
  if (!failpoints.ok()) {
    std::fprintf(stderr, "EMBER_FAILPOINTS: %s\n",
                 failpoints.ToString().c_str());
    return 2;
  }
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command == "models") return RunModels();
  if (command == "snapshot-convert") return RunSnapshotConvert(argc, argv);
  CliArgs args;
  if (!ParseCli(argc, argv, 2, args)) return Usage(argv[0]);
  if (command == "block") return RunBlock(args);
  if (command == "pipeline") return RunPipeline(args);
  if (command == "serve-bench") {
    return args.shards > 1 || args.replicas > 1 ? RunServeBenchSharded(args)
                                                : RunServeBench(args);
  }
  if (command == "snapshot-shard") return RunSnapshotShard(args);
  if (command == "stream-dedup") return RunStreamDedup(args);
  if (command == "metrics-dump") return RunMetricsDump(args);
  if (command == "trace-dump") return RunTraceDump(args);
  if (command == "trace-record") return RunTraceRecord(args);
  if (command == "trace-replay") return RunTraceReplay(args);
  return Usage(argv[0]);
}
