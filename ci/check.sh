#!/usr/bin/env bash
# Local CI gate: build Release and Debug+sanitizers, run the full test suite
# in both, run the concurrency suites under ThreadSanitizer, then smoke-run
# the micro-benchmarks and the serving engine on the Release build. New
# warnings in src/la and src/nn fail the build (-Werror on those targets).
# Usage: ci/check.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=2
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> ctest ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug -DEMBER_SANITIZE=ON

# ThreadSanitizer leg: only the suites that exercise real concurrency (the
# thread pool, the serving engine's MPMC queue/batcher, and the
# thread-count-invariance sweeps) — TSan on the full numeric suite is slow
# without adding coverage.
echo "==> configure build-tsan (EMBER_SANITIZE=tsan)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DEMBER_SANITIZE=tsan >/dev/null
echo "==> build build-tsan"
cmake --build build-tsan -j "${JOBS}" --target parallel_test serve_test determinism_test
echo "==> ctest build-tsan (parallel/serve/determinism)"
(cd build-tsan && ctest --output-on-failure -R '^(parallel|serve|determinism)_test$')

echo "==> exp20 micro-kernel smoke (Release)"
./build-release/bench/exp20_micro_kernels --benchmark_min_time=0.01

echo "==> exp22 serving smoke (Release)"
./build-release/bench/exp22_serving --scale 0.05

echo "==> serve CLI smoke (Release)"
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --snapshot build-release/d2_smoke.snap
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --snapshot build-release/d2_smoke.snap

echo "==> all checks passed"
