#!/usr/bin/env bash
# Local CI gate: build Release and Debug+sanitizers, run the full test suite
# in both, then smoke-run the micro-benchmarks on the Release build. New
# warnings in src/la and src/nn fail the build (-Werror on those targets).
# Usage: ci/check.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=2
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> ctest ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug -DEMBER_SANITIZE=ON

echo "==> exp20 micro-kernel smoke (Release)"
./build-release/bench/exp20_micro_kernels --benchmark_min_time=0.01

echo "==> all checks passed"
