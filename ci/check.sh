#!/usr/bin/env bash
# Local CI gate: build Release and Debug+sanitizers, run the full test suite
# in both, run the fault-injection suites (fault + stream + recover
# failpoints) and an $EMBER_FAILPOINTS env smoke under ASan, run the
# concurrency suites under ThreadSanitizer (serve/fault/router/stream/
# recover repeated until-fail:3), prove the -DEMBER_FAILPOINTS_ENABLED=OFF
# build, then smoke-run the micro-benchmarks and the serving/resilience/
# observability/streaming/recovery benches on the Release build
# (stream-dedup holds an incremental-F1 floor; the recovery drill must
# converge, and must fail closed with recover/replay armed), run the
# workload-harness smokes (trace-record byte-identity, trace-replay digest
# identity, fail-closed on an armed load/trace_read, exp29), validate the
# metrics-dump / trace-dump exporter output with a real parser, and hold
# src/obs+src/serve+src/stream+src/recover+src/la+src/load to a >= 85%
# line-coverage floor (Debug+gcov leg). New warnings in src/la
# and src/nn fail the build (-Werror on those targets).
# Usage: ci/check.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=2
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> ctest ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=Debug -DEMBER_SANITIZE=ON -DEMBER_FAILPOINTS_ENABLED=ON

# Fault-injection leg: the fault suite (failpoints, retries, breaker,
# degraded mode, hot reload, the exhaustive corruption sweep) plus the
# stream suite (delta-insert/tombstone/compaction failpoints, compacted-
# snapshot corruption sweep) under ASan so every injected error path is
# also leak/UB-clean, plus an env-spec smoke proving $EMBER_FAILPOINTS
# reaches the engine through the CLI.
echo "==> fault-injection suites under ASan"
(cd build-asan && ctest --output-on-failure -R '^(fault|stream|recover|load)_test$')
echo "==> EMBER_FAILPOINTS env smoke"
# A malformed spec must refuse to start.
EMBER_FAILPOINTS="not a valid spec" \
  ./build-asan/tools/ember_cli models >/dev/null 2>&1 \
  && { echo "malformed EMBER_FAILPOINTS was accepted" >&2; exit 1; }
# An env-armed save fault must fire: the run serves (build-from-scratch
# path) but the snapshot file must NOT be published.
rm -f build-asan/d2_fp_smoke.snap
EMBER_FAILPOINTS="snapshot/save=error:io" \
  ./build-asan/tools/ember_cli serve-bench D2 --scale 0.05 --qps 20 \
  --duration 1 --snapshot build-asan/d2_fp_smoke.snap >/dev/null
[ -e build-asan/d2_fp_smoke.snap ] \
  && { echo "env-armed snapshot/save failpoint did not fire" >&2; exit 1; }
# Clean run: saves, then the second run loads what the first published.
./build-asan/tools/ember_cli serve-bench D2 --scale 0.05 --qps 20 \
  --duration 1 --snapshot build-asan/d2_fp_smoke.snap >/dev/null
./build-asan/tools/ember_cli serve-bench D2 --scale 0.05 --qps 20 \
  --duration 1 --snapshot build-asan/d2_fp_smoke.snap >/dev/null

# ThreadSanitizer leg: only the suites that exercise real concurrency (the
# thread pool, the serving engine's MPMC queue/batcher, the fault/reload
# paths, the live-corpus mutation/compaction machinery, and the thread-
# count-invariance sweeps) — TSan on the full numeric suite is slow without
# adding coverage. serve/fault/stream repeat until-fail:3 to shake out
# schedule-dependent races in the breaker/reload/hot-swap machinery; the
# stream suite includes compaction and reload swaps under live mutation
# traffic.
echo "==> configure build-tsan (EMBER_SANITIZE=tsan)"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DEMBER_SANITIZE=tsan >/dev/null
echo "==> build build-tsan"
cmake --build build-tsan -j "${JOBS}" --target parallel_test serve_test fault_test determinism_test obs_test router_test stream_test recover_test load_test
echo "==> ctest build-tsan (parallel/determinism once; serve/fault/router/stream/recover/load x3)"
(cd build-tsan && ctest --output-on-failure -R '^(parallel|determinism)_test$')
(cd build-tsan && ctest --output-on-failure --repeat until-fail:3 -R '^(serve|fault|obs|router|stream|recover|load)_test$')

# Coverage leg: Debug + gcov, run the obs/serve/stream/la suites, and hold
# the line on the subsystems this repo treats as infrastructure — src/obs,
# src/serve (including the EMBS0002 mmap loader), src/stream (delta tier,
# tombstones, compaction) and src/la (including the quantization kernels)
# each need >= 85% line coverage, so untested exporter, container, overlay,
# or kernel paths fail the gate instead of rotting silently.
echo "==> configure build-cov (EMBER_COVERAGE=ON)"
cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug -DEMBER_COVERAGE=ON >/dev/null
echo "==> build build-cov"
cmake --build build-cov -j "${JOBS}" --target obs_test serve_test fault_test la_test index_test router_test stream_test recover_test load_test
echo "==> ctest build-cov (obs/serve/fault/la/index/router/stream/recover/load) + coverage floor"
(cd build-cov && find . -name '*.gcda' -delete && \
  ctest --output-on-failure -R '^(obs|serve|fault|la|index|router|stream|recover|load)_test$')
python3 - <<'PYEOF'
import glob, re, subprocess, sys
floor = 85.0
failed = False
for d in ["obs", "serve", "stream", "recover", "la", "load"]:
    gcda = glob.glob(f"build-cov/src/{d}/CMakeFiles/ember_{d}.dir/*.gcda")
    out = subprocess.run(["gcov", "-n"] + gcda, capture_output=True,
                         text=True).stdout
    total = covered = 0
    for m in re.finditer(r"File '([^']+)'\nLines executed:([\d.]+)% of (\d+)",
                         out):
        path, pct, n = m.group(1), float(m.group(2)), int(m.group(3))
        if f"/src/{d}/" in path:
            total += n
            covered += pct * n / 100.0
    pct = covered / total * 100.0 if total else 0.0
    status = "ok" if pct >= floor else "BELOW FLOOR"
    print(f"coverage src/{d}: {pct:.1f}% of {total} lines ({status})")
    failed |= pct < floor
sys.exit(1 if failed else 0)
PYEOF

# No-failpoint leg: -DEMBER_FAILPOINTS_ENABLED=OFF must still build and pass
# (injection tests skip themselves; the macro compiles to a no-op).
echo "==> configure build-nofp (EMBER_FAILPOINTS_ENABLED=OFF)"
cmake -B build-nofp -S . -DCMAKE_BUILD_TYPE=Release -DEMBER_FAILPOINTS_ENABLED=OFF >/dev/null
echo "==> build build-nofp"
cmake --build build-nofp -j "${JOBS}" --target serve_test fault_test stream_test recover_test load_test exp22_serving ember_cli
echo "==> ctest build-nofp (serve/fault/stream/recover/load)"
(cd build-nofp && ctest --output-on-failure -R '^(serve|fault|stream|recover|load)_test$')

echo "==> exp20 micro-kernel smoke (Release)"
./build-release/bench/exp20_micro_kernels --benchmark_min_time=0.01

echo "==> exp22 serving smoke (Release)"
./build-release/bench/exp22_serving --scale 0.05

echo "==> exp23 resilience smoke (Release)"
./build-release/bench/exp23_resilience --scale 0.05

echo "==> exp24 observability smoke (Release)"
./build-release/bench/exp24_observability --scale 0.05

echo "==> exp25 memory smoke (Release)"
./build-release/bench/exp25_memory --scale 0.05

echo "==> exp26 sharded scaling smoke (Release)"
./build-release/bench/exp26_scaling --scale 0.05

echo "==> exp27 streaming smoke (Release)"
# Asserts internally: counter identity per phase and 100% availability
# across the compaction hot-swaps.
./build-release/bench/exp27_streaming --scale 0.05

echo "==> exp28 recovery smoke (Release)"
# Asserts internally: 100% availability across the kill/rejoin cycle,
# convergence of every heal, and anti-entropy detection of fabricated
# divergence.
./build-release/bench/exp28_recovery --scale 0.05

echo "==> exp29 workload smoke (Release)"
# Asserts internally: same-seed byte-identity of the trace artifact, the
# every-byte-flip/truncation fail-closed sweep, and the structural
# admission invariants of the EDF-vs-FIFO SLO table.
./build-release/bench/exp29_workload --scale 0.05

echo "==> trace record/replay round-trip smoke (Release)"
# Same seed twice -> byte-identical trace files; two virtual replays of the
# same trace -> identical admission digest + report signature.
TRACE_FLAGS="--seed 7 --tenants 2 --rows 48 --qps 400 --duration 0.5 \
  --zipf 1.1 --upserts 0.1 --deletes 0.03 --quota 150 --phases poisson,burst"
./build-release/tools/ember_cli trace-record /tmp/ember_a.trace ${TRACE_FLAGS} >/dev/null
./build-release/tools/ember_cli trace-record /tmp/ember_b.trace ${TRACE_FLAGS} >/dev/null
cmp /tmp/ember_a.trace /tmp/ember_b.trace \
  || { echo "same-seed trace-record runs differ" >&2; exit 1; }
./build-release/tools/ember_cli trace-replay /tmp/ember_a.trace > /tmp/ember_replay1.out
./build-release/tools/ember_cli trace-replay /tmp/ember_a.trace > /tmp/ember_replay2.out
grep -q '^identity:' /tmp/ember_replay1.out
diff <(grep '^identity:' /tmp/ember_replay1.out) \
     <(grep '^identity:' /tmp/ember_replay2.out) \
  || { echo "virtual replays of one trace diverged" >&2; exit 1; }
# An armed load/trace_read failpoint must fail the load closed.
EMBER_FAILPOINTS="load/trace_read=error:io" \
  ./build-release/tools/ember_cli trace-replay /tmp/ember_a.trace \
  >/dev/null 2>&1 \
  && { echo "trace-replay served with load/trace_read failing" >&2; exit 1; }
# serve-bench consumes a recorded trace in timed mode with per-tenant SLOs.
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 \
  --trace-file /tmp/ember_a.trace > /tmp/ember_tracebench.out
grep -q 'trace replay' /tmp/ember_tracebench.out

echo "==> recovery drill smoke (Release): kill/rejoin through the CLI"
# A replica killed at t/3 and rejoined at 2t/3 under query + upsert load
# must catch up and converge, or the CLI exits nonzero.
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 100 \
  --duration 2 --shards 2 --replicas 2 --kill-replica 0:1 \
  --rejoin-replica > /tmp/ember_drill.out
grep -q 'converged=yes' /tmp/ember_drill.out
# With catch-up replay armed to fail, the heal must fail CLOSED: the
# replica stays quarantined, and the drill exits nonzero instead of
# declaring convergence it cannot prove.
EMBER_FAILPOINTS="recover/replay=error:io" \
  ./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 100 \
  --duration 2 --shards 2 --replicas 2 --kill-replica 0:1 \
  --rejoin-replica >/dev/null 2>&1 \
  && { echo "drill converged with recover/replay failing" >&2; exit 1; }

echo "==> stream-dedup smoke (Release): live incremental ER + F1 floor"
# Streams D2 one record at a time against the live corpus with background
# compaction; the run self-checks counter identity and availability. The
# final incremental pairwise F1 at the default threshold must clear 0.90
# (measured 1.00 at this scale), so a regression in the merged base+delta
# query path or the cluster bookkeeping fails the gate.
./build-release/tools/ember_cli stream-dedup D2 --scale 0.05 \
  --compact-rows 32 > /tmp/ember_stream_dedup.out
grep -q 'stream-dedup final' /tmp/ember_stream_dedup.out
python3 - <<'PYEOF'
import re
out = open("/tmp/ember_stream_dedup.out").read()
m = re.search(r"stream-dedup final precision=([\d.]+) recall=([\d.]+) "
              r"f1=([\d.]+)", out)
assert m, f"no final metrics line in:\n{out}"
f1 = float(m.group(3))
assert f1 >= 0.90, f"stream-dedup F1 {f1:.4f} below the 0.90 floor"
print(f"stream-dedup smoke: F1 {f1:.4f} (floor 0.90)")
PYEOF
# A stream-side env-armed failpoint must fail mutations closed: with the
# delta insert refusing service, no record can be admitted and the run
# must exit nonzero rather than silently dropping the stream.
EMBER_FAILPOINTS="stream/delta_insert=error:unavailable" \
  ./build-release/tools/ember_cli stream-dedup D2 --scale 0.05 \
  >/dev/null 2>&1 \
  && { echo "stream-dedup served with delta_insert failing" >&2; exit 1; }

echo "==> metrics/trace CLI smoke (Release): exporters must be parseable"
./build-release/tools/ember_cli metrics-dump D2 --scale 0.05 > /tmp/ember_metrics.prom
grep -q '^# TYPE ember_serve_submitted_total counter$' /tmp/ember_metrics.prom
grep -q 'ember_serve_queue_micros_bucket{.*le="+Inf"}' /tmp/ember_metrics.prom
./build-release/tools/ember_cli metrics-dump D2 --scale 0.05 --json > /tmp/ember_metrics.json
python3 -c "import json; json.load(open('/tmp/ember_metrics.json'))"
./build-release/tools/ember_cli trace-dump D2 --scale 0.05 --out /tmp/ember_trace.json >/dev/null
python3 - <<'PYEOF'
import json
trace = json.load(open("/tmp/ember_trace.json"))
events = trace["traceEvents"]
assert events, "trace-dump produced no spans"
names = {e["name"] for e in events}
for stage in ("serve/batch", "serve/embed", "serve/query", "serve/request"):
    assert stage in names, f"missing stage span {stage}: {sorted(names)}"
print(f"trace-dump: {len(events)} spans, {len(names)} distinct stages")
PYEOF

echo "==> serve CLI smoke (Release)"
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --snapshot build-release/d2_smoke.snap
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --snapshot build-release/d2_smoke.snap

echo "==> snapshot-convert round trip + quantized mmap serving (Release)"
# d2_smoke.snap is EMBS0002 (the default). Convert to the legacy container
# and back, then build the int8 tier and serve from the mmap'ed quantized
# snapshot; the ASan mmap loader already ran above via fault/serve tests.
./build-release/tools/ember_cli snapshot-convert \
  build-release/d2_smoke.snap build-release/d2_smoke_v1.snap --to v1
./build-release/tools/ember_cli snapshot-convert \
  build-release/d2_smoke_v1.snap build-release/d2_smoke_i8.snap --quantize int8
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --storage int8 --snapshot build-release/d2_smoke_i8.snap
# The quantized container must refuse to downgrade to EMBS0001.
./build-release/tools/ember_cli snapshot-convert \
  build-release/d2_smoke_i8.snap /dev/null --to v1 >/dev/null 2>&1 \
  && { echo "int8 snapshot converted to v1 but EMBS0001 cannot carry it" >&2; exit 1; }

echo "==> sharded serving smoke (Release): shard set + router scatter-gather"
# Build a 4-shard set; the CLI round-trips it and bit-compares the k-way
# merge against the unsharded oracle.
./build-release/tools/ember_cli snapshot-shard D2 --scale 0.05 --shards 4 \
  --prefix build-release/d2_shards > /tmp/ember_shard.out
grep -q 'bit-identical to the unsharded oracle' /tmp/ember_shard.out
# Serve through the router from the saved set (4 shards x 2 replicas) and
# spot-check the routed merge.
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --shards 4 --replicas 2 \
  --snapshot build-release/d2_shards > /tmp/ember_router.out
grep -q 'shard set: loaded 4 shards' /tmp/ember_router.out
grep -q 'routed queries match the shard merge' /tmp/ember_router.out
# Fail-closed: duplicating one shard file makes the set incoherent
# (duplicate shard_id), and the router must refuse to serve from it.
cp build-release/d2_shards.s0-of-4.snap build-release/d2_shards.s1-of-4.snap
./build-release/tools/ember_cli serve-bench D2 --scale 0.05 --qps 50 \
  --duration 1 --shards 4 --replicas 2 \
  --snapshot build-release/d2_shards >/dev/null 2>&1 \
  && { echo "incoherent shard set was served instead of refused" >&2; exit 1; }

echo "==> all checks passed"
